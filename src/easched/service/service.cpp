#include "easched/service/service.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <stdexcept>

#include "easched/common/contracts.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/service/brownout.hpp"
#include "easched/obs/trace.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/sched/feasibility.hpp"

namespace easched {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - since)
      .count();
}

double between_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Request ids in trace spans are `sequence + 1` (0 means "no request"), so
/// the first request of a stream is still visible in the trace.
std::uint64_t trace_request_id(std::uint64_t sequence) { return sequence + 1; }

/// Bucketed plan-latency metric per serving rung (static names, also used
/// as histogram keys in the registry).
const char* plan_latency_metric(PlanRung rung) {
  switch (rung) {
    case PlanRung::kExact:
      return "plan_latency_us_exact";
    case PlanRung::kDer:
      return "plan_latency_us_der";
    case PlanRung::kEven:
      return "plan_latency_us_even";
    case PlanRung::kNone:
      break;
  }
  return "plan_latency_us_none";
}

}  // namespace

SchedulerService::SchedulerService(const PowerModel& power, ServiceOptions options)
    : power_(power),
      options_(std::move(options)),
      queue_(options_.queue_capacity),
      cache_(options_.cache_capacity) {
  EASCHED_EXPECTS(options_.cores > 0);
  EASCHED_EXPECTS(options_.f_max > 0.0);
  EASCHED_EXPECTS(options_.max_batch > 0);
  EASCHED_EXPECTS(options_.signature_quantum > 0.0);
  // Fixed-bucket latency/size histograms, declared up front so they appear
  // in dumps and Prometheus exposition before the first observation.
  metrics_.declare_buckets("admission_latency_us", obs::default_latency_buckets_us());
  metrics_.declare_buckets("queue_wait_us", obs::default_latency_buckets_us());
  for (const PlanRung rung : {PlanRung::kExact, PlanRung::kDer, PlanRung::kEven}) {
    metrics_.declare_buckets(plan_latency_metric(rung), obs::default_latency_buckets_us());
  }
  metrics_.declare_buckets("queue_depth_seen", obs::pow2_buckets(16));
  metrics_.declare_buckets("plan_cache_hit_age", obs::pow2_buckets(24));
  metrics_.declare_buckets("plan_delta_latency_us", obs::default_latency_buckets_us());
  if (options_.incremental) {
    DeltaOptions delta_options;
    delta_options.cores = options_.cores;
    delta_planner_.emplace(power_, delta_options);
  }
  if (!options_.journal_path.empty()) {
    {
      std::lock_guard lock(state_mutex_);
      replay_journal_locked();
      refresh_gauges_locked();
    }
    journal_.emplace(options_.journal_path);
  }
  if (!options_.manual_dispatch) {
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
  }
}

SchedulerService::SchedulerService(const ServiceSnapshot& snapshot, const PowerModel& power,
                                   ServiceOptions options)
    : SchedulerService(power, [&] {
        options.cores = snapshot.cores;
        return options;
      }()) {
  std::lock_guard lock(state_mutex_);
  committed_ = snapshot.committed;
  std::sort(committed_.begin(), committed_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  next_id_ = snapshot.next_id;
  for (const auto& [id, task] : committed_) {
    EASCHED_EXPECTS_MSG(id < next_id_, "snapshot id at or above next_id");
  }
  // Re-seed monotone counters from the snapshot *before* replay, so replay
  // increments (and the restore marker below) land on top of the totals the
  // previous incarnation had already accumulated.
  for (const auto& [name, value] : snapshot.counters) {
    metrics_.set_counter(name, value);
  }
  // The journal is the log of everything that happened since it was
  // opened, so it replays *over* the snapshot: removals first, surviving
  // admits second (the delegated constructor already replayed it into the
  // empty set; re-applying over the snapshot base is idempotent).
  replay_journal_locked();
  // Pre-seed the cache so the first post-restart request re-plans nothing.
  if (!committed_.empty() && !snapshot.plan.empty()) {
    cache_.insert(committed_signature_locked(), CachedPlan{snapshot.energy, snapshot.plan});
  }
  metrics_.increment("restores_total");
  refresh_gauges_locked();
}

SchedulerService::~SchedulerService() { shutdown(); }

std::future<ServiceDecision> SchedulerService::submit(const Task& task, std::string rid) {
  auto fut = queue_.push(task, std::move(rid));
  metrics_.increment("requests_total");
  return fut;
}

ServiceDecision SchedulerService::submit_wait(const Task& task, std::string rid) {
  auto fut = submit(task, std::move(rid));
  if (options_.manual_dispatch) pump();
  return fut.get();
}

AdmissionDecision SchedulerService::quote(const Task& task) {
  std::lock_guard lock(state_mutex_);
  metrics_.increment("quotes_total");
  const CachedPlan base = plan_for_committed_locked();
  return evaluate_locked(task, base.energy, /*commit=*/false, nullptr);
}

bool SchedulerService::complete(TaskId id) {
  std::lock_guard lock(state_mutex_);
  auto it = std::find_if(committed_.begin(), committed_.end(),
                         [id](const auto& entry) { return entry.first == id; });
  if (it == committed_.end()) return false;
  committed_.erase(it);
  committed_signature_valid_ = false;
  if (journal_) journal_->append_complete(id);
  metrics_.increment("completions_total");
  refresh_gauges_locked();
  return true;
}

bool SchedulerService::cancel(TaskId id) {
  std::lock_guard lock(state_mutex_);
  auto it = std::find_if(committed_.begin(), committed_.end(),
                         [id](const auto& entry) { return entry.first == id; });
  if (it == committed_.end()) return false;
  committed_.erase(it);
  committed_signature_valid_ = false;
  if (journal_) journal_->append_complete(id);
  metrics_.increment("cancellations_total");
  refresh_gauges_locked();
  return true;
}

std::size_t SchedulerService::committed_count() const {
  std::lock_guard lock(state_mutex_);
  return committed_.size();
}

TaskSet SchedulerService::committed_task_set() const {
  std::lock_guard lock(state_mutex_);
  std::vector<Task> tasks;
  tasks.reserve(committed_.size());
  for (const auto& [id, task] : committed_) tasks.push_back(task);
  return TaskSet(std::move(tasks));
}

std::vector<TaskId> SchedulerService::committed_ids() const {
  std::lock_guard lock(state_mutex_);
  std::vector<TaskId> ids;
  ids.reserve(committed_.size());
  for (const auto& [id, task] : committed_) ids.push_back(id);
  return ids;
}

Schedule SchedulerService::current_plan() {
  std::lock_guard lock(state_mutex_);
  return plan_for_committed_locked().schedule;
}

double SchedulerService::current_energy() {
  std::lock_guard lock(state_mutex_);
  return plan_for_committed_locked().energy;
}

RuntimeReport SchedulerService::simulate_runtime(const RuntimeOptions& runtime_options) {
  TaskSet tasks;
  Schedule plan;
  {
    std::lock_guard lock(state_mutex_);
    std::vector<Task> committed;
    committed.reserve(committed_.size());
    for (const auto& [id, task] : committed_) committed.push_back(task);
    tasks = TaskSet(std::move(committed));
    if (!tasks.empty()) plan = plan_for_committed_locked().schedule;
    metrics_.increment("runtime_simulations_total");
  }
  if (tasks.empty()) {
    RuntimeReport empty;
    record_runtime_metrics(metrics_, empty);
    return empty;
  }
  const RuntimeReport report = run_runtime(tasks, plan, power_, runtime_options);
  record_runtime_metrics(metrics_, report);
  return report;
}

ServiceSnapshot SchedulerService::snapshot() {
  std::lock_guard lock(state_mutex_);
  ServiceSnapshot snap;
  snap.cores = options_.cores;
  snap.next_id = next_id_;
  snap.committed = committed_;
  const CachedPlan plan = plan_for_committed_locked();
  snap.plan = plan.schedule;
  snap.energy = plan.energy;
  metrics_.increment("snapshots_total");
  snap.counters = metrics_.snapshot().counters;
  return snap;
}

std::size_t SchedulerService::pump() {
  EASCHED_EXPECTS_MSG(options_.manual_dispatch,
                      "pump() requires ServiceOptions::manual_dispatch");
  std::size_t processed = 0;
  for (;;) {
    auto batch = queue_.pop_all(options_.max_batch);
    if (batch.empty()) break;
    processed += batch.size();
    process_batch(std::move(batch));
  }
  return processed;
}

void SchedulerService::drain() {
  if (options_.manual_dispatch) {
    pump();
    return;
  }
  const std::uint64_t target = queue_.pushed();
  std::unique_lock lock(state_mutex_);
  // Requests decided at the queue (sheds, overload rejects, injected
  // drops) never reach a batch, so they count against the drain target via
  // `rejected_early()`. Both terms are monotone.
  drain_cv_.wait(lock, [this, target] {
    return decided_requests_ + queue_.rejected_early() >= target;
  });
}

void SchedulerService::shutdown() {
  if (shutdown_.exchange(true)) return;
  queue_.close();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  } else {
    // Manual mode: decide whatever is still queued.
    for (;;) {
      auto batch = queue_.pop_all(options_.max_batch);
      if (batch.empty()) break;
      process_batch(std::move(batch));
    }
  }
}

void SchedulerService::dispatcher_loop() {
  for (;;) {
    auto batch = queue_.pop_batch(options_.batch_window, options_.max_batch);
    if (batch.empty()) return;  // closed and drained
    try {
      process_batch(std::move(batch));
    } catch (const InjectedCrash&) {
      // Simulated process death: the dispatcher stops cold, in-flight
      // promises stay broken, and only journaled state survives — exactly
      // what a real crash leaves behind. Recovery is a new service over
      // the same journal.
      metrics_.increment("injected_crashes_total");
      return;
    }
  }
}

void SchedulerService::process_batch(std::vector<PendingRequest> batch) {
  if (!options_.manual_dispatch && options_.use_thread_pool) {
    // One pool job per batch: planning compute shares the machine-wide
    // worker budget with everything else built on the pool. The batch
    // stays reachable through `shared` so an injected job failure (which
    // fires *before* the job body runs) can be retried inline instead of
    // breaking every promise in the batch.
    auto shared = std::make_shared<std::vector<PendingRequest>>(std::move(batch));
    ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::global();
    auto fut = pool.submit([this, shared]() mutable { run_batch(std::move(*shared)); });
    try {
      fut.get();
    } catch (const InjectedFault&) {
      metrics_.increment("batch_job_faults_total");
      run_batch(std::move(*shared));
    }
  } else {
    run_batch(std::move(batch));
  }
}

void SchedulerService::run_batch(std::vector<PendingRequest> batch) {
  const auto started = std::chrono::steady_clock::now();
  obs::Span batch_span("service.batch");
  batch_span.arg("requests", static_cast<double>(batch.size()));
  std::vector<std::pair<std::promise<ServiceDecision>, ServiceDecision>> outcomes;
  outcomes.reserve(batch.size());
  {
    std::lock_guard lock(state_mutex_);
    const std::uint64_t batch_index = batches_++;
    metrics_.increment("batches_total");
    metrics_.observe("batch_size", static_cast<double>(batch.size()));
    // Depth at pop time: this batch plus whatever is still waiting behind it.
    metrics_.observe_bucketed("queue_depth_seen",
                              static_cast<double>(batch.size() + queue_.depth()));

    // One baseline per batch, chained through the accepted candidates. A
    // baseline planning failure fails the whole batch with a reasoned
    // per-request rejection (never a hang, never an invalid plan).
    double energy_before = 0.0;
    bool baseline_failed = false;
    std::string baseline_reason;
    try {
      energy_before = plan_for_committed_locked().energy;
    } catch (const PlanningError& e) {
      baseline_failed = true;
      baseline_reason = e.what();
    }

    for (PendingRequest& request : batch) {
      // Everything this request does — planning spans included — is tagged
      // with its id and nests under its lifecycle span.
      obs::RequestScope request_scope(trace_request_id(request.sequence));
      obs::Span request_span("service.request");
      request_span.arg("sequence", static_cast<double>(request.sequence));
      const auto request_started = std::chrono::steady_clock::now();
      if (request.enqueued_at.time_since_epoch().count() != 0) {
        obs::emit("service.queue_wait", request.enqueued_at, request_started,
                  trace_request_id(request.sequence));
        metrics_.observe_bucketed("queue_wait_us",
                                  between_us(request.enqueued_at, request_started));
      }
      ServiceDecision decision;
      decision.sequence = request.sequence;
      decision.batch = batch_index;
      decision.brownout_level = brownout_level_.load(std::memory_order_relaxed);
      // Idempotent re-admission: a rid the service has already committed —
      // in this incarnation or any journaled predecessor — replays the
      // original ack instead of evaluating (and double-committing) again.
      if (!request.rid.empty()) {
        if (const auto hit = dedup_.find(request.rid); hit != dedup_.end()) {
          decision.admission.admitted = true;
          decision.id = hit->second;
          decision.deduplicated = true;
          metrics_.increment("request_dedup_hits_total");
          request_span.set_status("deduplicated");
          outcomes.emplace_back(std::move(request.promise), std::move(decision));
          continue;
        }
      }
      try {
        if (baseline_failed) throw PlanningError(baseline_reason);
        decision.admission = evaluate_locked(request.task, energy_before, /*commit=*/true,
                                             &decision.id, &decision.plan_rung);
      } catch (const InjectedCrash&) {
        // Crash simulation must observe real durability: rethrow so the
        // "process" dies here with this decision unacknowledged.
        throw;
      } catch (const PlanningError& e) {
        decision.admission.admitted = false;
        decision.admission.rejection_reason = std::string("planning failed: ") + e.what();
        decision.error_kind = AdmissionErrorKind::kPlanning;
      } catch (const ContractViolation& e) {
        decision.admission.admitted = false;
        decision.admission.rejection_reason = std::string("admission error: ") + e.what();
        decision.error_kind = AdmissionErrorKind::kContract;
      } catch (const std::exception& e) {
        decision.admission.admitted = false;
        decision.admission.rejection_reason = std::string("admission error: ") + e.what();
        decision.error_kind = AdmissionErrorKind::kInternal;
      }
      if (decision.error_kind != AdmissionErrorKind::kNone) {
        metrics_.increment("admission_errors_total");
        metrics_.increment(std::string("admission_errors_by_kind_") +
                           std::string(admission_error_kind_name(decision.error_kind)));
      }
      if (decision.admission.admitted) {
        // Write-ahead: the admit is durable before its promise is
        // fulfilled below, so every acknowledged admit survives a crash.
        // The rid rides inside the admit record — there is no crash window
        // in which the admit is durable but its dedup key is not.
        if (journal_) {
          obs::Span journal_span("service.journal_append");
          journal_->append_admit(decision.id, request.task, request.rid);
        }
        if (!request.rid.empty()) dedup_[request.rid] = decision.id;
        energy_before = decision.admission.energy_after;
        metrics_.increment("admitted_total");
        metrics_.observe("quoted_marginal_energy", decision.admission.marginal_energy);
        request_span.set_status("admitted");
      } else {
        metrics_.increment("rejected_total");
        request_span.set_status("rejected");
      }
      // Admission latency covers the full client-visible wait so far:
      // queue time plus evaluation (the reply fires right after the lock).
      if (request.enqueued_at.time_since_epoch().count() != 0) {
        metrics_.observe_bucketed("admission_latency_us", elapsed_us(request.enqueued_at));
      }
      outcomes.emplace_back(std::move(request.promise), std::move(decision));
    }
    decided_requests_ += outcomes.size();
    metrics_.observe("replan_latency_us", elapsed_us(started));
    refresh_gauges_locked();
  }
  // Fulfill promises outside the state lock: a client continuation may call
  // straight back into the service.
  for (auto& [promise, decision] : outcomes) {
    obs::RequestScope request_scope(trace_request_id(decision.sequence));
    obs::Span reply_span("service.reply");
    promise.set_value(std::move(decision));
  }
  drain_cv_.notify_all();
}

FallbackOptions SchedulerService::fallback_options() const {
  FallbackOptions fo;
  fo.try_exact = options_.exact_first;
  if (options_.plan_budget.count() > 0) {
    fo.budget.deadline = PlanBudget::Clock::now() + options_.plan_budget;
  }
  fo.budget.max_solver_iterations = options_.plan_max_iterations;
  // The brownout ladder trims the chain from the top: level ≥ 1 drops the
  // exact rung, level ≥ 2 enters the heuristics at F1.
  const int brownout = brownout_level_.load(std::memory_order_relaxed);
  if (brownout >= 1) fo.try_exact = false;
  if (brownout >= 2) fo.first_heuristic = PlanRung::kEven;
  return fo;
}

CachedPlan SchedulerService::plan_set_locked(const std::vector<std::pair<TaskId, Task>>& live,
                                             const std::string& raw_signature) {
  if (live.empty()) {
    CachedPlan empty;
    empty.schedule = Schedule(options_.cores);
    empty.rung = PlanRung::kNone;
    return empty;
  }
  // Salt the cache key with the brownout level: a degraded (F2- or F1-only)
  // plan cached at level > 0 must never be served as the full-service plan
  // of the same set once load recedes — and vice versa.
  const int brownout = brownout_level_.load(std::memory_order_relaxed);
  std::string salted;
  if (brownout > 0) {
    salted.reserve(raw_signature.size() + 3);
    salted = raw_signature;
    salted += "|b";
    salted += static_cast<char>('0' + brownout);
  }
  const std::string& signature = brownout > 0 ? salted : raw_signature;
  std::uint64_t hit_age = 0;
  if (auto hit = cache_.lookup(signature, &hit_age)) {
    metrics_.increment("plan_cache_hits_total");
    metrics_.observe_bucketed("plan_cache_hit_age", static_cast<double>(hit_age));
    return *hit;
  }
  metrics_.increment("plan_cache_misses_total");
  std::vector<Task> tasks;
  tasks.reserve(live.size());
  for (const auto& [id, task] : live) tasks.push_back(task);
  const TaskSet task_set(std::move(tasks));

  // Delta fast path: with the exact rung off, a cache miss whose set is a
  // few ops away from the previously planned one is spliced instead of
  // re-planned. The planner's exactness contract makes the served plan
  // bit-identical to the fallback chain's DER rung, so this changes
  // latency, never answers. Any validation or planner failure invalidates
  // the planner and falls through to the ordinary chain.
  if (delta_planner_ && !options_.exact_first && brownout < 2) {
    obs::Span delta_span("service.plan_delta");
    delta_span.arg("tasks", static_cast<double>(live.size()));
    const auto delta_started = std::chrono::steady_clock::now();
    try {
      DeltaOutcome outcome;
      DeltaPlan delta = delta_planner_->plan_to(task_set, kernel_exec(), &outcome);
      const ValidationReport report = delta.schedule.validate(task_set);
      if (report.ok && std::isfinite(delta.energy)) {
        const double spent = elapsed_us(delta_started);
        metrics_.observe_bucketed("plan_delta_latency_us", spent);
        metrics_.observe_bucketed(plan_latency_metric(PlanRung::kDer), spent);
        metrics_.increment(outcome.delta ? "plan_delta_hits_total" : "plan_delta_full_total");
        metrics_.increment("plans_by_rung_der");
        delta_span.arg("ops", static_cast<double>(outcome.ops));
        delta_span.set_status(outcome.delta ? "delta" : "rebuild");
        CachedPlan plan{delta.energy, std::move(delta.schedule), PlanRung::kDer};
        cache_.insert(signature, plan);
        return plan;
      }
      delta_planner_->invalidate();
      metrics_.increment("plan_delta_fallbacks_total");
      delta_span.set_status("invalid");
    } catch (const InjectedCrash&) {
      delta_planner_->invalidate();
      throw;
    } catch (const std::exception&) {
      delta_planner_->invalidate();
      metrics_.increment("plan_delta_fallbacks_total");
      delta_span.set_status("failed");
    }
  }

  obs::Span plan_span("service.plan");
  plan_span.arg("tasks", static_cast<double>(live.size()));
  const auto plan_started = std::chrono::steady_clock::now();
  FallbackOptions chain_options = fallback_options();
  // With both knobs on, seed the exact rung from the delta planner's
  // refined F2 allocation of this very set — a feasible near-optimal
  // iterate the splice keeps cheap to maintain. A planner failure just
  // means a cold start.
  std::optional<Availability> warm_hint;
  if (delta_planner_ && options_.exact_first && options_.warm_start_exact) {
    try {
      delta_planner_->plan_to(task_set, kernel_exec());
      warm_hint.emplace(delta_planner_->refined_allocation());
      chain_options.exact.warm_start = &*warm_hint;
    } catch (const InjectedCrash&) {
      delta_planner_->invalidate();
      throw;
    } catch (const std::exception&) {
      delta_planner_->invalidate();
    }
  }
  const FallbackPlan planned =
      plan_with_fallback(task_set, options_.cores, power_, chain_options, kernel_exec());
  metrics_.observe_bucketed(plan_latency_metric(planned.outcome.served),
                            elapsed_us(plan_started));
  plan_span.set_status(plan_rung_name(planned.outcome.served).data());
  for (const RungAttempt& attempt : planned.outcome.attempts) {
    if (!attempt.served) {
      metrics_.increment(std::string("fallback_rung_failures_") +
                         std::string(plan_rung_name(attempt.rung)));
    }
  }
  if (planned.outcome.rejected()) {
    metrics_.increment("planning_failures_total");
    throw PlanningError(planned.outcome.reason());
  }
  metrics_.increment(std::string("plans_by_rung_") +
                     std::string(plan_rung_name(planned.outcome.served)));
  if (planned.outcome.degraded()) metrics_.increment("fallback_degraded_total");
  CachedPlan plan{planned.energy, planned.schedule, planned.outcome.served};
  cache_.insert(signature, plan);
  return plan;
}

CachedPlan SchedulerService::plan_for_committed_locked() {
  return plan_set_locked(committed_, committed_signature_locked());
}

const std::string& SchedulerService::committed_signature_locked() {
  if (!committed_signature_valid_) {
    committed_signature_ = plan_signature(committed_, options_.signature_quantum);
    committed_signature_valid_ = true;
  }
  return committed_signature_;
}

void SchedulerService::replay_journal_locked() {
  if (options_.journal_path.empty()) return;
  const JournalRecovery recovery = AdmissionJournal::recover(options_.journal_path);
  if (recovery.records == 0 && recovery.dropped_lines == 0 && recovery.corruptions.empty()) {
    return;
  }
  // Removals first (a task the journal saw completed must not survive from
  // a snapshot base), then the surviving admits, id order kept.
  for (const TaskId id : recovery.removed_ids) {
    auto it = std::find_if(committed_.begin(), committed_.end(),
                           [id](const auto& entry) { return entry.first == id; });
    if (it != committed_.end()) committed_.erase(it);
  }
  for (const auto& [id, task] : recovery.committed) {
    auto it = std::lower_bound(committed_.begin(), committed_.end(), id,
                               [](const auto& entry, TaskId key) { return entry.first < key; });
    if (it != committed_.end() && it->first == id) {
      it->second = task;
    } else {
      committed_.insert(it, {id, task});
    }
  }
  next_id_ = std::max(next_id_, recovery.next_id);
  // Re-seed the dedup map: a client retrying an admit that was acked by the
  // previous incarnation must get the same id back, not a second commit.
  for (const auto& [rid, id] : recovery.request_ids) dedup_[rid] = id;
  committed_signature_valid_ = false;
  metrics_.increment("journal_replays_total");
  metrics_.increment("journal_records_replayed_total", recovery.records);
  if (recovery.dropped_lines > 0) {
    metrics_.increment("journal_torn_lines_total", recovery.dropped_lines);
  }
  // Mid-file corruption is damage, not a torn tail: count it loudly (the
  // supervisor alerts on this counter) but keep every valid record.
  if (!recovery.corruptions.empty()) {
    metrics_.increment("journal_corruption_total", recovery.corruptions.size());
  }
  metrics_.set_gauge("journal_recovered_tasks", static_cast<double>(recovery.committed.size()));
}

Exec SchedulerService::kernel_exec() const {
  if (!options_.use_thread_pool) return Exec::serial();
  return options_.pool != nullptr ? Exec::on(*options_.pool) : Exec::global();
}

AdmissionDecision SchedulerService::evaluate_locked(const Task& candidate,
                                                    double energy_before, bool commit,
                                                    TaskId* out_id, PlanRung* out_rung) {
  // Mirrors `admit_task` decision for decision parity with sequential
  // per-request admission (the batched-determinism contract); the energy
  // baseline is chained in by the caller instead of recomputed.
  AdmissionDecision decision;
  decision.energy_before = energy_before;

  if (!(std::isfinite(candidate.release) && std::isfinite(candidate.deadline) &&
        std::isfinite(candidate.work)) ||
      candidate.work <= 0.0 || candidate.deadline <= candidate.release) {
    decision.rejection_reason = "malformed task (need work > 0 and deadline > release)";
    return decision;
  }
  if (std::isfinite(options_.f_max) && candidate.intensity() > options_.f_max) {
    decision.rejection_reason = "task needs more than the frequency ceiling even running alone";
    return decision;
  }

  std::vector<std::pair<TaskId, Task>> merged = committed_;
  merged.emplace_back(next_id_, candidate);
  std::vector<Task> merged_tasks;
  merged_tasks.reserve(merged.size());
  for (const auto& [id, task] : merged) merged_tasks.push_back(task);
  const TaskSet all(std::move(merged_tasks));

  if (std::isfinite(options_.f_max)) {
    const FeasibilityReport report = check_feasibility(all, options_.cores, options_.f_max);
    if (!report.feasible) {
      decision.rejection_reason =
          report.violated_conditions.empty()
              ? "no migrating schedule fits at the frequency ceiling (flow test)"
              : report.violated_conditions.front();
      return decision;
    }
  }

  // The candidate's id is the largest in `merged`, so the merged signature
  // is the committed one plus a single appended fragment — O(1) on top of
  // the memoized committed signature instead of an O(n) rebuild per request.
  std::string merged_signature = committed_signature_locked();
  append_plan_signature(merged_signature, next_id_, candidate, options_.signature_quantum);

  // Plan the merged set through the cache and the fallback chain. A prior
  // quote of the same candidate against the same committed set left this
  // plan behind, so an admit after a quote re-plans nothing. Throws
  // `PlanningError` when every rung fails — the caller converts that into
  // a reasoned rejection.
  const CachedPlan plan = plan_set_locked(merged, merged_signature);

  decision.admitted = true;
  decision.energy_after = plan.energy;
  decision.marginal_energy = decision.energy_after - decision.energy_before;
  if (out_rung != nullptr) *out_rung = plan.rung;
  if (commit) {
    if (out_id != nullptr) *out_id = next_id_;
    committed_ = std::move(merged);
    // The merged signature *is* the new committed signature.
    committed_signature_ = std::move(merged_signature);
    committed_signature_valid_ = true;
    ++next_id_;
  }
  return decision;
}

void SchedulerService::set_brownout_level(int level) {
  const int clamped = std::clamp(level, 0, kBrownoutMaxLevel);
  const int previous = brownout_level_.exchange(clamped, std::memory_order_relaxed);
  if (previous != clamped) {
    metrics_.increment("brownout_transitions_total");
    metrics_.set_gauge("brownout_level", static_cast<double>(clamped));
  }
}

std::optional<JournalCompaction> SchedulerService::compact_journal() {
  std::lock_guard lock(state_mutex_);
  if (!journal_) return std::nullopt;
  // Deterministic record order: dedup entries sorted by rid.
  std::vector<std::pair<std::string, TaskId>> dedup(dedup_.begin(), dedup_.end());
  std::sort(dedup.begin(), dedup.end());
  const JournalCompaction result = journal_->compact(next_id_, committed_, dedup);
  metrics_.increment("journal_compactions_total");
  metrics_.set_gauge("journal_size_bytes", static_cast<double>(result.bytes_after));
  return result;
}

void SchedulerService::refresh_gauges_locked() {
  double work = 0.0;
  for (const auto& [id, task] : committed_) work += task.work;
  metrics_.set_gauge("committed_tasks", static_cast<double>(committed_.size()));
  metrics_.set_gauge("committed_work", work);
  metrics_.set_gauge("queue_depth", static_cast<double>(queue_.depth()));
  metrics_.set_gauge("plan_cache_size", static_cast<double>(cache_.size()));
  metrics_.set_gauge("plan_cache_hit_rate", cache_.hit_rate());
  metrics_.set_gauge("queue_shed_total", static_cast<double>(queue_.shed()));
  metrics_.set_gauge("queue_overload_rejected_total",
                     static_cast<double>(queue_.overload_rejected()));
  metrics_.set_gauge("queue_fault_dropped_total", static_cast<double>(queue_.fault_dropped()));
  metrics_.set_gauge("queue_fault_duplicated_total",
                     static_cast<double>(queue_.fault_duplicated()));
}

}  // namespace easched
