#pragma once

/// \file service.hpp
/// \brief A long-lived scheduling service: batched admission over a
///        committed task set, with plan caching and metrics.
///
/// Every other entry point in this repository is one-shot: build a task
/// set, plan it, exit. `SchedulerService` is the first component shaped
/// like a deployment — a daemon that owns the set of admitted tasks and
/// serves concurrent requests for the paper's runtime-facing questions:
/// *can this new task join?* (admission + energy quote), *what is the
/// current plan?*, and *how is the service doing?* (metrics).
///
/// Three mechanisms make it serve sustained traffic cheaply:
///
///  1. **Batched admission.** Requests arriving within a configurable
///     window are admitted as one batch: the energy baseline of the
///     committed set is computed once per batch (usually a cache hit) and
///     chained through the batch's accepted candidates, instead of being
///     re-derived per request the way standalone `admit_task` must. The
///     batch is processed in arrival order, so the accept/reject outcome is
///     byte-identical to applying the same requests sequentially —
///     batching buys throughput, never different answers.
///
///  2. **Plan caching.** F2 plans are memoized by a quantized signature of
///     the committed set (see `plan_cache.hpp`). Quotes, plan reads, and
///     the per-batch baseline all hit the cache while the set is unchanged;
///     admits/completions/cancellations change the signature and thereby
///     invalidate structurally.
///
///  3. **Shared compute.** Batch planning runs as one job on the existing
///     `ThreadPool`, so many service instances (or a service plus the
///     Monte-Carlo harness) share one machine-wide worker budget.
///
/// The service also supports graceful drain/shutdown and snapshot/restore
/// (`snapshot.hpp`), so a restarted daemon resumes its commitments
/// mid-horizon.
///
/// **Failure model.** Planning runs through the fallback chain of
/// `sched/fallback.hpp` (optionally exact-first under a `PlanBudget`), so a
/// misbehaving solver degrades a plan instead of stalling the service; the
/// chain's validator guarantee means an invalid plan is never served. With
/// a `journal_path`, every admit is written ahead (and flushed) to a WAL
/// before its decision is acknowledged, and construction replays the
/// journal so a crashed service restarts with every acknowledged admit
/// intact (`journal.hpp`). A bounded queue (`queue_capacity`) sheds the
/// lowest-laxity requests under overload instead of growing without bound.
/// Injected faults (`faults/fault_injection.hpp`) surface as structured
/// error kinds on decisions — except `InjectedCrash`, which is *never*
/// swallowed: it propagates (simulating the process dying) so crash tests
/// observe exactly what durability survived.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "easched/common/math.hpp"
#include "easched/power/power_model.hpp"
#include "easched/runtime/runtime.hpp"
#include "easched/sched/admission.hpp"
#include "easched/sched/fallback.hpp"
#include "easched/sched/incremental.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/service/journal.hpp"
#include "easched/service/metrics.hpp"
#include "easched/service/plan_cache.hpp"
#include "easched/service/request_queue.hpp"
#include "easched/service/snapshot.hpp"
#include "easched/solver/plan_budget.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Thrown when every rung of the fallback chain fails for a set that must
/// be planned (the committed baseline or a merged candidate set). Batch
/// processing converts it into a reasoned rejection with
/// `AdmissionErrorKind::kPlanning`; direct readers (`current_plan`,
/// `quote`, `snapshot`) let it propagate.
class PlanningError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ThreadPool;

/// Tunables of a `SchedulerService`.
struct ServiceOptions {
  int cores = 4;
  /// Platform frequency ceiling; `kInf` models the ideal continuous
  /// platform (admission then only rejects malformed requests).
  double f_max = kInf;
  /// How long the dispatcher keeps collecting after the first request of a
  /// batch arrives.
  std::chrono::microseconds batch_window{200};
  /// Hard cap on requests admitted as one batch.
  std::size_t max_batch = 64;
  /// Plan cache entries (0 disables caching).
  std::size_t cache_capacity = 128;
  /// Quantization grain of the plan-cache signature.
  double signature_quantum = 1e-6;
  /// When true, no dispatcher thread is started; the owner drives batches
  /// explicitly via `pump()`. Deterministic mode for tests and replay.
  bool manual_dispatch = false;
  /// Run batch planning on `ThreadPool::global()` instead of the
  /// dispatcher thread (ignored in manual mode), and fan the planning
  /// kernel itself out over the same pool. The kernel shares that one
  /// worker budget — a planning pass never spawns threads of its own — and
  /// its plans are bit-identical to serial planning at any pool size.
  bool use_thread_pool = true;
  /// Try the exact convex solve as the top rung of every planning pass,
  /// falling back to F2 → F1 when it fails or runs out of budget. Off by
  /// default: the heuristic-only chain reproduces the pre-fallback plans
  /// bit-for-bit.
  bool exact_first = false;
  /// Serve plan-cache misses through the incremental delta planner
  /// (`sched/incremental.hpp`) when the exact rung is off: a committed set
  /// that differs from the previously planned one by a few tasks is spliced
  /// instead of re-planned from scratch. Plans are bit-identical either
  /// way (the delta path's exactness contract); a delta that cannot keep
  /// the contract rebuilds from scratch inside the planner, and a planner
  /// failure falls back to the ordinary fallback chain.
  bool incremental = true;
  /// With `exact_first`, warm-start the exact rung's solver from the delta
  /// planner's cached DER availability of the same set (the solvers ignore
  /// the hint unless its dimensions match). Off by default: a warm-started
  /// solve converges to the same validated solution but takes a different
  /// iterate path, so opt in explicitly.
  bool warm_start_exact = false;
  /// Wall-clock budget per planning pass (only the exact rung consumes it
  /// cooperatively; the heuristic rescue rungs always run). 0 = unlimited.
  std::chrono::microseconds plan_budget{0};
  /// Iteration ceiling for the exact rung's solver. 0 = the solver default.
  std::size_t plan_max_iterations = 0;
  /// Bound on requests waiting in the queue; overflow sheds the
  /// lowest-laxity request (see `request_queue.hpp`). 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// Path of the crash-safe admission journal (WAL). Empty disables
  /// journaling. On construction the journal is replayed — on top of the
  /// snapshot, when resuming from one — before any request is served.
  std::string journal_path;
  /// Run planning kernels (and batch jobs) on this pool instead of
  /// `ThreadPool::global()`. Lets owners give each service instance —
  /// supervisor shards, tests at pools {1, 2, 8} — its own worker budget;
  /// plans are bit-identical at any pool size (the `Exec` contract).
  /// Ignored when `use_thread_pool` is false. Not owned; must outlive the
  /// service.
  ThreadPool* pool = nullptr;
};

struct Exec;

/// The batched admission daemon. Thread-safe: any number of client threads
/// may call `submit`, `quote`, `complete`, `cancel`, and the read accessors
/// concurrently.
class SchedulerService {
 public:
  explicit SchedulerService(const PowerModel& power, ServiceOptions options = {});

  /// Resume from a snapshot: the committed set and id counter are restored
  /// and the snapshot's plan pre-seeds the cache, so the first request
  /// after restart does not pay a cold re-plan. `options.cores` is
  /// overridden by the snapshot's core count.
  SchedulerService(const ServiceSnapshot& snapshot, const PowerModel& power,
                   ServiceOptions options = {});

  /// Graceful: drains queued requests, then stops the dispatcher.
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// \name Admission traffic
  /// @{

  /// Enqueue an admission request. The future resolves after the batch
  /// containing the request is processed. A non-empty `rid` (client
  /// request id, no whitespace) makes the admission *idempotent*: a retry
  /// carrying the same rid — in this incarnation or after a crash/restart
  /// over the same journal — resolves to the original task id with
  /// `ServiceDecision::deduplicated` set instead of double-committing.
  /// Throws `std::runtime_error` after `shutdown()`.
  std::future<ServiceDecision> submit(const Task& task, std::string rid = {});

  /// Submit and block for the decision (drives a `pump()` in manual mode).
  ServiceDecision submit_wait(const Task& task, std::string rid = {});

  /// Non-binding admission check with an energy quote: evaluates the
  /// candidate against the current committed set without committing it.
  /// Repeated quotes of an unchanged set are cache hits; a quote also
  /// warms the cache for a subsequent admit of the same candidate.
  AdmissionDecision quote(const Task& task);
  /// @}

  /// \name Committed-set lifecycle
  /// @{

  /// Remove a finished task. Returns false for unknown ids.
  bool complete(TaskId id);
  /// Remove a task that will not run after all. Returns false for unknown ids.
  bool cancel(TaskId id);
  /// @}

  /// \name State reads
  /// @{
  std::size_t committed_count() const;
  /// Committed tasks in id order. Task indices of `current_plan()` are
  /// positions in this set.
  TaskSet committed_task_set() const;
  std::vector<TaskId> committed_ids() const;
  /// The F2 plan of the committed set (cached while the set is unchanged).
  Schedule current_plan();
  /// F2 energy of the committed set.
  double current_energy();
  /// Simulate executing the committed set's plan through the online
  /// runtime (slack reclamation / DVFS / DPM per `options`). Planning uses
  /// the cache under the state lock; the simulation itself runs outside
  /// it, so admission traffic is never blocked behind a what-if. Decision
  /// counters and reclaimed-slack / sleep-residency histograms land in
  /// `metrics()` (see `record_runtime_metrics`).
  RuntimeReport simulate_runtime(const RuntimeOptions& runtime_options = {});
  /// Serialize current state for restart (see `snapshot.hpp`).
  ServiceSnapshot snapshot();
  MetricsRegistry& metrics() { return metrics_; }
  const ServiceOptions& options() const { return options_; }
  /// @}

  /// \name Brownout (see `brownout.hpp`)
  /// @{

  /// Set the degradation level (clamped to [0, kBrownoutMaxLevel]).
  /// Level ≥ 1 skips the exact rung; level ≥ 2 plans F1-only (the delta
  /// path is bypassed too — it serves F2 plans). Plans produced at level
  /// > 0 are cached under a level-salted key, so a degraded plan never
  /// masquerades as the full-service plan for the same set. The level-3
  /// shed and tracing disarm are the owner's job (`ServiceShard`).
  void set_brownout_level(int level);
  int brownout_level() const { return brownout_level_.load(std::memory_order_relaxed); }
  /// @}

  /// Rewrite the journal in place so replay cost stays proportional to the
  /// *live* state instead of history: the compacted log holds a `next`
  /// record, the committed set, and the rid→id dedup map. Returns nothing
  /// when journaling is off. Any snapshot taken before the compaction is
  /// invalidated (its completions were compacted away) — owners resuming
  /// from snapshots must re-snapshot at the compaction point, which is what
  /// `ServiceShard` does.
  std::optional<JournalCompaction> compact_journal();

  /// \name Lifecycle
  /// @{

  /// Manual mode only: process everything currently queued (in batches of
  /// at most `max_batch`). Returns the number of requests processed.
  std::size_t pump();

  /// Block until every request submitted before this call is decided.
  void drain();

  /// Stop accepting submissions, decide everything still queued, stop the
  /// dispatcher. Idempotent; called by the destructor.
  void shutdown();
  /// @}

 private:
  void dispatcher_loop();
  void process_batch(std::vector<PendingRequest> batch);
  void run_batch(std::vector<PendingRequest> batch);

  /// Fallback-chain configuration derived from the options; the budget
  /// deadline starts ticking at the call.
  FallbackOptions fallback_options() const;
  /// Plan `live` (whose cache key is `signature`) through the cache and the
  /// fallback chain; records rung metrics. Throws `PlanningError` when every
  /// rung fails. Caller holds `state_mutex_`.
  CachedPlan plan_set_locked(const std::vector<std::pair<TaskId, Task>>& live,
                             const std::string& signature);
  /// Plan (and energy) for the current committed set, via the cache.
  /// Caller holds `state_mutex_`.
  CachedPlan plan_for_committed_locked();
  /// Memoized signature of the committed set: rebuilt only after a mutation
  /// invalidated it, so steady-state quotes/baselines skip the O(n) rebuild.
  /// Caller holds `state_mutex_`.
  const std::string& committed_signature_locked();
  /// Replay the journal at `options_.journal_path` over the current
  /// committed set (removals first, surviving admits second). Caller holds
  /// `state_mutex_` (or is the constructor).
  void replay_journal_locked();
  /// Admission core shared by batches and quotes. Evaluates `candidate`
  /// against the committed set; when `commit` is set and the candidate is
  /// feasible, it joins the set under a fresh id (written to `*out_id`);
  /// `*out_rung` (if given) receives the fallback rung whose plan backed an
  /// admit. Throws `PlanningError` when every rung fails. Caller holds
  /// `state_mutex_`.
  AdmissionDecision evaluate_locked(const Task& candidate, double energy_before,
                                    bool commit, TaskId* out_id,
                                    PlanRung* out_rung = nullptr);
  /// Execution context for planning kernels: the global pool when
  /// `use_thread_pool` is set, serial otherwise — one shared thread budget,
  /// never a private one.
  Exec kernel_exec() const;
  void refresh_gauges_locked();

  PowerModel power_;
  ServiceOptions options_;
  MetricsRegistry metrics_;
  RequestQueue queue_;
  std::optional<AdmissionJournal> journal_;  ///< open iff `journal_path` set

  mutable std::mutex state_mutex_;
  std::condition_variable drain_cv_;
  std::vector<std::pair<TaskId, Task>> committed_;  ///< id order
  /// Cached `plan_signature(committed_)`; valid iff
  /// `committed_signature_valid_`. A committed admit extends it in place
  /// (the new id is the largest); removals and replays invalidate it.
  std::string committed_signature_;
  bool committed_signature_valid_ = false;
  TaskId next_id_ = 0;
  /// rid → admitted task id, for idempotent re-admission. Seeded from the
  /// journal's rid-tagged admits on replay; grows with every rid-tagged
  /// admit. Guarded by `state_mutex_`.
  std::unordered_map<std::string, TaskId> dedup_;
  PlanCache cache_;
  /// Present iff `options_.incremental`; guarded by `state_mutex_` like the
  /// cache it sits behind.
  std::optional<DeltaPlanner> delta_planner_;
  std::uint64_t batches_ = 0;
  std::uint64_t decided_requests_ = 0;

  std::atomic<int> brownout_level_{0};
  std::atomic<bool> shutdown_{false};
  std::thread dispatcher_;  ///< not started in manual mode
};

}  // namespace easched
