#include "easched/common/linalg.hpp"

#include <cmath>

#include "easched/common/contracts.hpp"
#include "easched/parallel/exec.hpp"

namespace easched {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  EASCHED_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  EASCHED_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  EASCHED_EXPECTS(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

double Matrix::distance(const Matrix& other) const {
  EASCHED_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  double sum = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    const double d = data_[k] - other.data_[k];
    sum += d * d;
  }
  return std::sqrt(sum);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::optional<Matrix> cholesky(const Matrix& a, double pivot_tol) {
  return cholesky(a, pivot_tol, Exec::serial());
}

std::optional<Matrix> cholesky(const Matrix& a, double pivot_tol, const Exec& exec) {
  EASCHED_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > pivot_tol)) return std::nullopt;  // catches NaN too
    const double root = std::sqrt(diag);
    l(j, j) = root;
    // Row updates in this column are independent: row i writes only
    // l(i, j), and each dot over k < j runs serially in k order, so the
    // factor matches the serial sweep bit for bit. Fan out only when the
    // column's flop count covers the fork cost.
    const std::size_t rows_below = n - j - 1;
    const bool wide = rows_below * j >= 65536;
    const auto update_row = [&](std::size_t r) {
      const std::size_t i = j + 1 + r;
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / root;
    };
    if (wide) {
      exec.loop(rows_below, update_row);
    } else {
      for (std::size_t r = 0; r < rows_below; ++r) update_row(r);
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& l, std::vector<double> b) {
  const std::size_t n = l.rows();
  EASCHED_EXPECTS(b.size() == n);
  // Forward: L·y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * b[k];
    b[i] = sum / l(i, i);
  }
  // Backward: Lᵀ·x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * b[k];
    b[ii] = sum / l(ii, ii);
  }
  return b;
}

std::optional<std::vector<double>> solve_spd(const Matrix& a, const std::vector<double>& b) {
  const auto l = cholesky(a);
  if (!l) return std::nullopt;
  return cholesky_solve(*l, b);
}

double norm2(const std::vector<double>& v) {
  double sum = 0.0;
  for (const double x : v) sum += x * x;
  return std::sqrt(sum);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  EASCHED_EXPECTS(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) sum += a[k] * b[k];
  return sum;
}

}  // namespace easched
