#pragma once

/// \file table.hpp
/// \brief ASCII table rendering for benchmark/experiment output.
///
/// The bench binaries print tables shaped like the paper's figures and
/// Table II; this class handles column sizing and alignment so the bench
/// code only declares headers and appends rows.

#include <iosfwd>
#include <string>
#include <vector>

namespace easched {

/// A simple right-aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Append a pre-formatted row. Must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a row of doubles with fixed precision. The first
  /// column is taken from `label`.
  void add_row(const std::string& label, const std::vector<double>& values, int precision = 4);

  std::size_t rows() const { return rows_.size(); }

  /// Render with column separators and a header rule.
  std::string to_string() const;

  /// Render as CSV (no padding), for machine consumption.
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const AsciiTable& table);

/// Format a double with fixed precision (helper shared with bench code).
std::string format_fixed(double v, int precision);

}  // namespace easched
