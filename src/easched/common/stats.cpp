#include "easched/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "easched/common/contracts.hpp"

namespace easched {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const {
  EASCHED_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  EASCHED_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  EASCHED_EXPECTS(n_ > 0);
  return max_;
}

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  EASCHED_EXPECTS(!sorted.empty());
  EASCHED_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

}  // namespace easched
