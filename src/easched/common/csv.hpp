#pragma once

/// \file csv.hpp
/// \brief Minimal CSV reading/writing for task traces and experiment dumps.
///
/// This is deliberately a small subset of RFC 4180: comma-separated fields,
/// no embedded commas/quotes (task traces are purely numeric plus simple
/// identifiers), `#`-prefixed comment lines, and a mandatory header row.

#include <string>
#include <vector>

namespace easched {

/// One parsed CSV document: a header and data rows of equal arity.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws ContractViolation when absent.
  std::size_t column(const std::string& name) const;
};

/// Parse CSV text. Throws `std::runtime_error` on ragged rows or empty input.
CsvDocument parse_csv(const std::string& text);

/// Read + parse a CSV file. Throws `std::runtime_error` when unreadable.
CsvDocument read_csv_file(const std::string& path);

/// Serialize rows under a header. All rows must match the header arity.
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

/// Write text to a file, throwing `std::runtime_error` on failure.
void write_file(const std::string& path, const std::string& text);

/// Read a whole file into a string.
std::string read_file(const std::string& path);

}  // namespace easched
