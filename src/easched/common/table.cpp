#include "easched/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "easched/common/contracts.hpp"

namespace easched {

std::string format_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  EASCHED_EXPECTS(!headers_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  EASCHED_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_row(const std::string& label, const std::vector<double>& values,
                         int precision) {
  EASCHED_EXPECTS(values.size() + 1 == headers_.size());
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(format_fixed(v, precision));
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string AsciiTable::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const AsciiTable& table) {
  return os << table.to_string();
}

}  // namespace easched
