#include "easched/common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "easched/common/contracts.hpp"

namespace easched {

namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) {
    // Trim surrounding whitespace; traces written by hand often align columns.
    const auto begin = field.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      fields.emplace_back();
      continue;
    }
    const auto end = field.find_last_not_of(" \t\r");
    fields.push_back(field.substr(begin, end - begin + 1));
  }
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

}  // namespace

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  EASCHED_EXPECTS_MSG(false, "missing CSV column: " + name);
  return 0;  // unreachable
}

CsvDocument parse_csv(const std::string& text) {
  CsvDocument doc;
  std::istringstream is(text);
  std::string line;
  bool have_header = false;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    auto fields = split_fields(line);
    if (!have_header) {
      doc.header = std::move(fields);
      have_header = true;
      continue;
    }
    if (fields.size() != doc.header.size()) {
      throw std::runtime_error("ragged CSV row: expected " + std::to_string(doc.header.size()) +
                               " fields, got " + std::to_string(fields.size()));
    }
    doc.rows.push_back(std::move(fields));
  }
  if (!have_header) throw std::runtime_error("CSV input has no header row");
  return doc;
}

CsvDocument read_csv_file(const std::string& path) { return parse_csv(read_file(path)); }

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    EASCHED_EXPECTS(row.size() == header.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) os << ',';
    os << header[i];
  }
  os << '\n';
  for (const auto& row : rows) emit(row);
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << text;
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace easched
