#pragma once

/// \file linalg.hpp
/// \brief Small dense linear algebra for the interior-point solver.
///
/// The Newton systems arising from the barrier subproblems reduce (via the
/// Woodbury identity) to symmetric positive-definite systems of dimension
/// `tasks + subintervals` — at most low hundreds — so an unblocked dense
/// Cholesky is the right tool: simple, cache-friendly at this scale, and
/// trivially verifiable.

#include <cstddef>
#include <optional>
#include <vector>

namespace easched {

struct Exec;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// y = A·x.
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// Frobenius-norm distance to another matrix (test helper).
  double distance(const Matrix& other) const;

  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
/// Only the lower triangle of `a` is read. Returns `nullopt` when a pivot
/// falls below `pivot_tol` (matrix not numerically SPD).
std::optional<Matrix> cholesky(const Matrix& a, double pivot_tol = 1e-300);

/// Parallel Cholesky: within each column, the row updates below the pivot
/// fan out over `exec` (each row's dot product stays serial in k order, so
/// the factor is bit-identical to the serial overload at any pool size).
/// Small columns run serial to avoid fork overhead.
std::optional<Matrix> cholesky(const Matrix& a, double pivot_tol, const Exec& exec);

/// Solve L·Lᵀ·x = b given the Cholesky factor L (forward + back substitution).
std::vector<double> cholesky_solve(const Matrix& l, std::vector<double> b);

/// Convenience: solve A·x = b for SPD A; `nullopt` when not SPD.
std::optional<std::vector<double>> solve_spd(const Matrix& a, const std::vector<double>& b);

/// Euclidean norm.
double norm2(const std::vector<double>& v);

/// Dot product (sizes must match).
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace easched
