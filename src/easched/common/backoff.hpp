#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "easched/common/rng.hpp"

namespace easched {

// Decorrelated-jitter retry backoff (the AWS builders'-library variant):
//   wait = clamp(uniform(base, 3 * previous), base, cap)
// Successive waits random-walk upward without the synchronized thundering
// herds of plain exponential backoff. Shared by the CLI retry path, the
// load generator, and `BlockingClient::connect`.
inline std::chrono::microseconds decorrelated_backoff(Rng& rng,
                                                      std::chrono::microseconds base,
                                                      std::chrono::microseconds previous,
                                                      std::chrono::microseconds cap) {
  const double lo = static_cast<double>(base.count());
  const double hi = std::max(lo, 3.0 * static_cast<double>(previous.count()));
  const auto drawn =
      std::chrono::microseconds(static_cast<std::int64_t>(rng.uniform(lo, hi)));
  return std::min(std::max(drawn, base), cap);
}

}  // namespace easched
