#include "easched/common/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "easched/common/contracts.hpp"

namespace easched {

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void CliParser::add_option(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  EASCHED_EXPECTS(!name.empty());
  EASCHED_EXPECTS_MSG(options_.find(name) == options_.end(), "duplicate option: " + name);
  options_[name] = {default_value, help, false};
  option_order_.push_back(name);
}

void CliParser::add_switch(const std::string& name, const std::string& help) {
  EASCHED_EXPECTS(!name.empty());
  EASCHED_EXPECTS_MSG(options_.find(name) == options_.end(), "duplicate option: " + name);
  options_[name] = {"false", help, true};
  option_order_.push_back(name);
}

void CliParser::add_positional(const std::string& name, const std::string& help) {
  positionals_.push_back({name, help});
}

bool CliParser::parse(int argc, const char* const* argv) {
  values_.clear();
  positional_values_.clear();
  error_.clear();
  help_requested_ = false;
  for (const auto& [name, opt] : options_) values_[name] = opt.default_value;

  for (int k = 1; k < argc; ++k) {
    std::string arg = argv[k];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      std::string value;
      bool has_value = false;
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_value = true;
      }
      const auto it = options_.find(name);
      if (it == options_.end()) {
        error_ = "unknown option --" + name;
        return false;
      }
      if (it->second.is_switch) {
        if (has_value) {
          error_ = "switch --" + name + " takes no value";
          return false;
        }
        values_[name] = "true";
        continue;
      }
      if (!has_value) {
        if (k + 1 >= argc) {
          error_ = "option --" + name + " needs a value";
          return false;
        }
        value = argv[++k];
      }
      values_[name] = value;
      continue;
    }
    positional_values_.push_back(arg);
  }
  if (positional_values_.size() > positionals_.size()) {
    error_ = "too many positional arguments";
    return false;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  EASCHED_EXPECTS_MSG(it != values_.end(), "undeclared option: " + name);
  return it->second;
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

int CliParser::get_int(const std::string& name) const {
  return static_cast<int>(std::strtol(get(name).c_str(), nullptr, 10));
}

bool CliParser::get_switch(const std::string& name) const { return get(name) == "true"; }

std::optional<std::string> CliParser::positional(const std::string& name) const {
  for (std::size_t k = 0; k < positionals_.size(); ++k) {
    if (positionals_[k].first == name) {
      if (k < positional_values_.size()) return positional_values_[k];
      return std::nullopt;
    }
  }
  EASCHED_EXPECTS_MSG(false, "undeclared positional: " + name);
  return std::nullopt;  // unreachable
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\nusage: " << program_ << " [options]";
  for (const auto& [name, help] : positionals_) os << " [" << name << "]";
  os << "\n\noptions:\n";
  for (const std::string& name : option_order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (!opt.is_switch) os << " <value>   (default: " << opt.default_value << ")";
    os << "\n      " << opt.help << "\n";
  }
  for (const auto& [name, help] : positionals_) {
    os << "  " << name << ": " << help << "\n";
  }
  return os.str();
}

}  // namespace easched
