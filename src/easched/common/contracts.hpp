#pragma once

/// \file contracts.hpp
/// \brief Lightweight precondition / postcondition / invariant checking in the
///        spirit of the C++ Core Guidelines GSL `Expects`/`Ensures`.
///
/// Contract violations indicate programming errors (not recoverable runtime
/// conditions), so they throw `easched::ContractViolation`, which carries the
/// failing expression and source location. Tests rely on this to probe
/// error paths without aborting the process.

#include <stdexcept>
#include <string>

namespace easched {

/// Thrown when an `EASCHED_EXPECTS` / `EASCHED_ENSURES` / `EASCHED_ASSERT`
/// condition evaluates to false.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file, int line,
                    const std::string& msg)
      : std::logic_error(std::string(kind) + " failed: (" + expr + ") at " + file + ":" +
                         std::to_string(line) + (msg.empty() ? "" : ": " + msg)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line, const std::string& msg = {}) {
  throw ContractViolation(kind, expr, file, line, msg);
}
}  // namespace detail

}  // namespace easched

/// Precondition check: argument validation at public API boundaries.
#define EASCHED_EXPECTS(cond)                                                         \
  do {                                                                                \
    if (!(cond)) ::easched::detail::contract_fail("Precondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// Precondition check with an explanatory message.
#define EASCHED_EXPECTS_MSG(cond, msg)                                                \
  do {                                                                                \
    if (!(cond))                                                                      \
      ::easched::detail::contract_fail("Precondition", #cond, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Postcondition check: verifies results before returning them.
#define EASCHED_ENSURES(cond)                                                          \
  do {                                                                                 \
    if (!(cond)) ::easched::detail::contract_fail("Postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// Internal invariant check.
#define EASCHED_ASSERT(cond)                                                       \
  do {                                                                             \
    if (!(cond)) ::easched::detail::contract_fail("Invariant", #cond, __FILE__, __LINE__); \
  } while (false)
