#pragma once

/// \file stats.hpp
/// \brief Streaming statistics used to aggregate Monte-Carlo experiment runs.

#include <cstddef>
#include <vector>

namespace easched {

/// Welford-style streaming accumulator: numerically stable mean/variance,
/// plus min/max. Mergeable so per-thread accumulators can be combined.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Merge another accumulator into this one (parallel reduction step).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact sample quantile (linear interpolation between order statistics).
/// `q` in [0,1]. The input vector is copied; for repeated quantiles sort once
/// and use `quantile_sorted`.
double quantile(std::vector<double> values, double q);

/// Quantile of an already-sorted sample.
double quantile_sorted(const std::vector<double>& sorted, double q);

}  // namespace easched
