#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

/// Stable LSD radix sorting of (u64 key, u32 index) pairs, shared by the
/// allocator's descending-DER order (Algorithm 2) and `Schedule::validate`'s
/// start-time ordering. Both sort a few hundred to a few hundred thousand
/// keys on every plan, where the byte-histogram passes beat a comparison
/// sort's cache-hostile indirection.

namespace easched {

/// Stable LSD radix sort of (key, index) pairs by ascending key. Stability
/// keeps equal keys in their original (ascending-index) order; a byte pass
/// whose histogram lands everything in one bucket is the identity and is
/// skipped, which prunes most high-byte passes — keys produced from doubles
/// in one schedule usually share an exponent.
inline void radix_sort_keys(std::vector<std::pair<std::uint64_t, std::uint32_t>>& a,
                            std::vector<std::pair<std::uint64_t, std::uint32_t>>& b) {
  const std::size_t n = a.size();
  if (n < 2) return;
  b.resize(n);
  std::size_t pos[256];
  for (int shift = 0; shift < 64; shift += 8) {
    std::size_t count[256] = {};
    for (const auto& e : a) ++count[(e.first >> shift) & 0xff];
    if (count[(a[0].first >> shift) & 0xff] == n) continue;
    std::size_t run = 0;
    for (std::size_t bucket = 0; bucket < 256; ++bucket) {
      pos[bucket] = run;
      run += count[bucket];
    }
    for (const auto& e : a) b[pos[(e.first >> shift) & 0xff]++] = e;
    a.swap(b);
  }
}

/// Order-preserving u64 key for any finite double: ascending key order is
/// ascending value order over the full range, negatives included (flip all
/// bits of negatives, flip only the sign bit of non-negatives).
inline std::uint64_t ordered_double_key(double value) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  return bits ^ ((bits >> 63) != 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << 63));
}

}  // namespace easched
