#pragma once

/// \file cli.hpp
/// \brief A minimal declarative command-line option parser for the tools.
///
/// Supports `--key value`, `--key=value`, boolean switches (`--flag`),
/// positional arguments, defaults, and generated `--help` text. Unknown
/// options are errors (catches typos in experiment scripts).

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace easched {

/// Declarative option set + parser.
class CliParser {
 public:
  /// `program` and `summary` appear in the help text.
  CliParser(std::string program, std::string summary);

  /// Declare a valued option with a default (shown in --help).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Declare a boolean switch (false unless present).
  void add_switch(const std::string& name, const std::string& help);

  /// Declare a named positional argument (optional; in declaration order).
  void add_positional(const std::string& name, const std::string& help);

  /// Parse. Returns false (after filling `error()`) on malformed input;
  /// `help_requested()` is set when `--help`/`-h` appears.
  bool parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }

  /// Accessors (valid after a successful parse).
  std::string get(const std::string& name) const;
  double get_double(const std::string& name) const;
  int get_int(const std::string& name) const;
  bool get_switch(const std::string& name) const;
  /// Positional by name; nullopt when the caller didn't supply it.
  std::optional<std::string> positional(const std::string& name) const;

  /// The generated help text.
  std::string help() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_switch = false;
  };

  std::string program_;
  std::string summary_;
  std::map<std::string, Option> options_;
  std::vector<std::string> option_order_;
  std::vector<std::pair<std::string, std::string>> positionals_;  // (name, help)

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_values_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace easched
