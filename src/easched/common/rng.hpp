#pragma once

/// \file rng.hpp
/// \brief Deterministic random number generation.
///
/// Every stochastic component of the library (workload generators, Monte
/// Carlo experiment sweeps) draws from `easched::Rng`, a SplitMix64-based
/// engine. SplitMix64 passes BigCrush, is trivially seedable from a single
/// 64-bit value, and — unlike `std::mt19937` seeded via seed_seq — gives
/// bit-identical streams across standard library implementations, which keeps
/// experiment tables reproducible across machines.

#include <cstdint>
#include <string_view>

#include "easched/common/contracts.hpp"

namespace easched {

/// SplitMix64 engine (Steele, Lea, Flood; public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 random mantissa bits -> uniform dyadic rational in [0,1).
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    EASCHED_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    EASCHED_EXPECTS(n > 0);
    // Lemire-style rejection-free multiply-shift is fine here; modulo bias is
    // negligible for the small n used by the generators, but we reject anyway
    // to keep the draw exact.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = operator()();
      if (r >= threshold) return r % n;
    }
  }

  /// Pick a uniformly random element from a non-empty list.
  template <typename Container>
  auto pick(const Container& c) -> decltype(c[0]) {
    EASCHED_EXPECTS(!c.empty());
    return c[static_cast<std::size_t>(uniform_index(c.size()))];
  }

  /// Derive an independent child stream; used to give each Monte-Carlo run
  /// its own generator regardless of execution order (thread-safe fan-out).
  Rng split(std::uint64_t stream) const {
    Rng child(state_ ^ (0x94d049bb133111ebULL * (stream + 1)));
    child();  // decorrelate from the parent state
    return child;
  }

  /// Stable 64-bit hash of a label + indices; gives every experiment cell a
  /// documented, reproducible seed. FNV-1a over the label, mixed with indices.
  static std::uint64_t seed_of(std::string_view label, std::uint64_t a = 0, std::uint64_t b = 0,
                               std::uint64_t c = 0) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char ch : label) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
      h *= 1099511628211ULL;
    }
    const auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(a);
    mix(b);
    mix(c);
    return h;
  }

 private:
  std::uint64_t state_;
};

}  // namespace easched
