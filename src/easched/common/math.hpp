#pragma once

/// \file math.hpp
/// \brief Small numeric helpers shared across the library.

#include <algorithm>
#include <cmath>
#include <limits>

namespace easched {

/// Absolute-plus-relative tolerance comparison. Suitable for energies and
/// times that may span several orders of magnitude within one instance.
inline bool almost_equal(double a, double b, double abs_tol = 1e-9, double rel_tol = 1e-9) {
  const double diff = std::abs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::abs(a), std::abs(b));
}

/// `a <= b` up to tolerance; used by validators so that exact arithmetic on
/// interval endpoints does not produce spurious violations.
inline bool leq_tol(double a, double b, double tol = 1e-9) { return a <= b + tol; }

/// `a >= b` up to tolerance.
inline bool geq_tol(double a, double b, double tol = 1e-9) { return a + tol >= b; }

/// True when `x` lies in `[lo, hi]` up to tolerance.
inline bool in_range_tol(double x, double lo, double hi, double tol = 1e-9) {
  return geq_tol(x, lo, tol) && leq_tol(x, hi, tol);
}

/// Positive part.
inline double pos(double x) { return x > 0.0 ? x : 0.0; }

/// Squared value, convenient in energy formulas.
inline double sq(double x) { return x * x; }

/// Length of the intersection of intervals [a1,a2] and [b1,b2] (0 if disjoint).
inline double overlap_length(double a1, double a2, double b1, double b2) {
  return pos(std::min(a2, b2) - std::max(a1, b1));
}

/// A value representing "no finite quantity yet".
inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace easched
