#include "easched/sim/power_trace.hpp"

#include <algorithm>
#include <map>

#include "easched/common/contracts.hpp"
#include "easched/common/csv.hpp"
#include "easched/common/table.hpp"

namespace easched {

PowerTrace::PowerTrace(const Schedule& schedule, const PowerFunction& power) {
  EASCHED_EXPECTS(power != nullptr);
  if (schedule.empty()) return;

  // Sweep line over segment boundaries, accumulating per-segment power.
  // A map from time to power delta handles overlapping segments on
  // different cores naturally.
  std::map<double, double> delta;
  for (const Segment& seg : schedule.segments()) {
    const double p = power(seg.frequency);
    delta[seg.start] += p;
    delta[seg.end] -= p;
  }

  double current = 0.0;
  double previous_time = delta.begin()->first;
  for (const auto& [time, change] : delta) {
    if (time > previous_time && std::abs(current) > 1e-12) {
      steps_.push_back({previous_time, time, current});
    }
    current += change;
    previous_time = time;
  }
  EASCHED_ENSURES(std::abs(current) < 1e-9);  // deltas cancel
}

double PowerTrace::total_energy() const {
  double total = 0.0;
  for (const PowerStep& s : steps_) total += s.energy();
  return total;
}

double PowerTrace::peak_power() const {
  double peak = 0.0;
  for (const PowerStep& s : steps_) peak = std::max(peak, s.power);
  return peak;
}

double PowerTrace::average_power() const {
  if (steps_.empty()) return 0.0;
  const double span = steps_.back().end - steps_.front().begin;
  EASCHED_ASSERT(span > 0.0);
  return total_energy() / span;
}

double PowerTrace::power_at(double t) const {
  for (const PowerStep& s : steps_) {
    if (t >= s.begin && t < s.end) return s.power;
  }
  return 0.0;
}

std::string PowerTrace::to_csv() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(steps_.size());
  for (const PowerStep& s : steps_) {
    rows.push_back(
        {format_fixed(s.begin, 9), format_fixed(s.end, 9), format_fixed(s.power, 9)});
  }
  return easched::to_csv({"begin", "end", "power"}, rows);
}

}  // namespace easched
