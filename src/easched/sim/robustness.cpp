#include "easched/sim/robustness.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/sim/edf.hpp"

namespace easched {

Schedule derate_schedule(const Schedule& schedule, double factor) {
  EASCHED_EXPECTS(factor > 0.0);
  Schedule out(schedule.core_count());
  for (Segment seg : schedule.segments()) {
    seg.frequency *= factor;
    out.add(seg);
  }
  return out;
}

std::vector<RobustnessPoint> derating_sweep(const TaskSet& tasks, const Schedule& schedule,
                                            const std::vector<double>& factors,
                                            const PowerFunction& power) {
  EASCHED_EXPECTS(!factors.empty());
  std::vector<RobustnessPoint> points;
  points.reserve(factors.size());
  const double total_work = tasks.total_work();
  for (const double factor : factors) {
    const Schedule derated = derate_schedule(schedule, factor);
    const ExecutionReport run = execute_schedule(tasks, derated, power, 1e-6);
    RobustnessPoint point;
    point.factor = factor;
    point.missed_tasks = run.missed_deadline_count();
    double shortfall = 0.0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      shortfall += std::max(0.0, tasks[i].work - run.tasks[i].completed_work);
    }
    point.shortfall_fraction = total_work > 0.0 ? shortfall / total_work : 0.0;
    point.energy = run.energy;
    points.push_back(point);
  }
  return points;
}

bool edf_meets_deadlines_at(const TaskSet& tasks, int cores,
                            const std::vector<double>& frequency, double factor) {
  EASCHED_EXPECTS(factor > 0.0);
  EASCHED_EXPECTS(frequency.size() == tasks.size());
  std::vector<double> derated(frequency);
  for (double& f : derated) f *= factor;
  return edf_dispatch(tasks, cores, derated).feasible();
}

double critical_derating_factor(const TaskSet& tasks, int cores,
                                const std::vector<double>& frequency, double tol) {
  EASCHED_EXPECTS(tol > 0.0);
  if (!edf_meets_deadlines_at(tasks, cores, frequency, 1.0)) {
    return 1.0;  // not even nominal speed survives under EDF
  }
  double lo = 0.0;  // misses (factor -> 0 always misses: unbounded lateness)
  double hi = 1.0;  // meets everything
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (edf_meets_deadlines_at(tasks, cores, frequency, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace easched
