#pragma once

/// \file engine.hpp
/// \brief A minimal discrete-event simulation core.
///
/// Events are time-stamped callbacks executed in non-decreasing time order;
/// ties run in scheduling order (stable). The schedule executor and the
/// online EDF dispatcher are built on this engine, which lets tests drive
/// them event by event and keeps energy integration exact (piecewise-constant
/// power between events).

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

namespace easched {

/// Event-queue driven simulation clock.
class SimulationEngine {
 public:
  using Callback = std::function<void(SimulationEngine&)>;

  /// Schedule `callback` at absolute time `time`.
  ///
  /// Contract (enforced, throws `ContractViolation` with the offending
  /// times): `time` must be finite, and once `run()` has started it must
  /// not precede the current clock — causality violations are programming
  /// errors, never silently reordered.
  void schedule_at(double time, Callback callback);

  /// Process events until the queue drains. Re-entrant scheduling from
  /// within callbacks is allowed.
  void run();

  /// Current simulation time (last dispatched event's time).
  double now() const { return now_; }

  /// Total events dispatched so far.
  std::size_t dispatched() const { return dispatched_; }

  bool running() const { return running_; }

 private:
  struct Entry {
    double time;
    std::size_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::size_t sequence_ = 0;
  std::size_t dispatched_ = 0;
  bool running_ = false;
  bool started_ = false;
};

}  // namespace easched
