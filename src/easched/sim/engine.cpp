#include "easched/sim/engine.hpp"

#include <cmath>
#include <string>

#include "easched/common/contracts.hpp"

namespace easched {

void SimulationEngine::schedule_at(double time, Callback callback) {
  EASCHED_EXPECTS(callback != nullptr);
  EASCHED_EXPECTS_MSG(std::isfinite(time),
                      "event time must be finite, got " + std::to_string(time));
  if (started_) {
    EASCHED_EXPECTS_MSG(time >= now_, "causality violation: event at t=" +
                                          std::to_string(time) +
                                          " precedes the clock at t=" + std::to_string(now_));
  }
  queue_.push(Entry{time, sequence_++, std::move(callback)});
}

void SimulationEngine::run() {
  EASCHED_EXPECTS_MSG(!running_, "run() is not re-entrant");
  running_ = true;
  started_ = true;
  while (!queue_.empty()) {
    // priority_queue::top returns const&; move via const_cast is the usual
    // idiom but copying the small callback keeps this simple and safe.
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.time;
    ++dispatched_;
    entry.callback(*this);
  }
  running_ = false;
}

}  // namespace easched
