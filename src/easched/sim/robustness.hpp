#pragma once

/// \file robustness.hpp
/// \brief Sensitivity of frequency assignments to derating.
///
/// Real silicon under-delivers: thermal throttling, voltage guard-bands and
/// OS governor latency all shave effective throughput. Two views:
///
///  * **Plan sensitivity** (`derate_schedule`/`derating_sweep`): replay the
///    *fixed* plan with every effective frequency scaled by a factor < 1.
///    Timings don't move, so the work shortfall is exactly `1 − factor` —
///    useful as an executor cross-check and for energy-vs-throttle curves,
///    but it cannot distinguish schedulers.
///  * **Runtime tolerance** (`critical_derating_factor`): the runtime reacts
///    to slowness by running longer — global EDF at the derated per-task
///    frequencies. A plan whose frequencies sit above the bare-minimum
///    rates (e.g. clamped at the critical frequency `f*`) absorbs real
///    derating before any deadline breaks. This is the scheduler-dependent
///    robustness the `ablation_robustness` bench compares.

#include <vector>

#include "easched/sched/schedule.hpp"
#include "easched/sim/executor.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Copy of `schedule` with every segment's frequency scaled by `factor`
/// (> 0). Segment timings are unchanged, so completed work scales down for
/// factors < 1.
Schedule derate_schedule(const Schedule& schedule, double factor);

/// Outcome of executing a derated plan (fixed timings).
struct RobustnessPoint {
  double factor = 1.0;
  std::size_t missed_tasks = 0;
  /// Total unfinished work across tasks, as a fraction of Σ C_i.
  double shortfall_fraction = 0.0;
  double energy = 0.0;
};

/// Execute the fixed `schedule` under each derating factor.
std::vector<RobustnessPoint> derating_sweep(const TaskSet& tasks, const Schedule& schedule,
                                            const std::vector<double>& factors,
                                            const PowerFunction& power);

/// Does global EDF at `factor · frequency[i]` still meet every deadline?
bool edf_meets_deadlines_at(const TaskSet& tasks, int cores,
                            const std::vector<double>& frequency, double factor);

/// The smallest factor in (0, 1] the frequency assignment tolerates under a
/// reacting (EDF) runtime, by bisection to `tol`. 1.0 means no headroom;
/// smaller is more robust. (Multiprocessor EDF is not perfectly monotone in
/// speed in pathological cases; the bisection returns the boundary of the
/// feasible region it observes, which matches monotone behavior in
/// practice.)
double critical_derating_factor(const TaskSet& tasks, int cores,
                                const std::vector<double>& frequency, double tol = 1e-3);

}  // namespace easched
