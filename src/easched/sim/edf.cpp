#include "easched/sim/edf.hpp"

#include <algorithm>
#include <limits>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"

namespace easched {

bool EdfResult::feasible() const {
  return std::none_of(missed.begin(), missed.end(), [](bool m) { return m; });
}

std::size_t EdfResult::miss_count() const {
  return static_cast<std::size_t>(std::count(missed.begin(), missed.end(), true));
}

EdfResult edf_dispatch(const TaskSet& tasks, int cores, const std::vector<double>& frequency) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(frequency.size() == tasks.size());
  for (const double f : frequency) EASCHED_EXPECTS(f > 0.0);

  const std::size_t n = tasks.size();
  std::vector<double> remaining(n);  // execution time left at the task's frequency
  for (std::size_t i = 0; i < n; ++i) remaining[i] = tasks[i].work / frequency[i];

  std::vector<double> releases;
  releases.reserve(n);
  for (const Task& t : tasks) releases.push_back(t.release);
  std::sort(releases.begin(), releases.end());
  releases.erase(std::unique(releases.begin(), releases.end()), releases.end());
  std::size_t next_release_idx = 0;

  EdfResult result;
  result.schedule.set_core_count(cores);
  result.missed.assign(n, false);

  std::vector<int> last_core(n, -1);       // last core each task ran on
  std::vector<int> core_task(static_cast<std::size_t>(cores), -1);
  std::vector<double> completion(n, kInf);

  const double tol = 1e-12;
  double t = releases.front();
  std::size_t unfinished = n;

  while (unfinished > 0) {
    while (next_release_idx < releases.size() && releases[next_release_idx] <= t + tol) {
      ++next_release_idx;
    }

    // Ready queue: released, unfinished, ordered by (deadline, id).
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (remaining[i] > tol && tasks[i].release <= t + tol) ready.push_back(i);
    }
    std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
      if (tasks[a].deadline != tasks[b].deadline) return tasks[a].deadline < tasks[b].deadline;
      return a < b;
    });
    if (ready.size() > static_cast<std::size_t>(cores)) {
      ready.resize(static_cast<std::size_t>(cores));
    }

    if (ready.empty()) {
      // Idle until the next release.
      EASCHED_ASSERT(next_release_idx < releases.size());
      t = releases[next_release_idx];
      continue;
    }

    // Core assignment with affinity: keep selected tasks on their current
    // core, count preemptions for displaced tasks, migrations for moves.
    std::vector<int> new_core_task(static_cast<std::size_t>(cores), -1);
    std::vector<bool> placed(ready.size(), false);
    for (std::size_t k = 0; k < ready.size(); ++k) {
      const auto task = static_cast<int>(ready[k]);
      for (int c = 0; c < cores; ++c) {
        if (core_task[static_cast<std::size_t>(c)] == task) {
          new_core_task[static_cast<std::size_t>(c)] = task;
          placed[k] = true;
          break;
        }
      }
    }
    for (std::size_t k = 0; k < ready.size(); ++k) {
      if (placed[k]) continue;
      const auto task = static_cast<int>(ready[k]);
      for (int c = 0; c < cores; ++c) {
        if (new_core_task[static_cast<std::size_t>(c)] == -1) {
          new_core_task[static_cast<std::size_t>(c)] = task;
          if (last_core[ready[k]] != -1 && last_core[ready[k]] != c) ++result.migrations;
          break;
        }
      }
    }
    for (int c = 0; c < cores; ++c) {
      const int old_task = core_task[static_cast<std::size_t>(c)];
      if (old_task == -1) continue;
      const bool still_running =
          std::find(new_core_task.begin(), new_core_task.end(), old_task) != new_core_task.end();
      if (!still_running && remaining[static_cast<std::size_t>(old_task)] > tol) {
        ++result.preemptions;
      }
    }
    core_task = new_core_task;

    // Advance to the next event: a release or the earliest completion.
    double t_next = next_release_idx < releases.size() ? releases[next_release_idx] : kInf;
    for (int c = 0; c < cores; ++c) {
      const int task = core_task[static_cast<std::size_t>(c)];
      if (task >= 0) t_next = std::min(t_next, t + remaining[static_cast<std::size_t>(task)]);
    }
    EASCHED_ASSERT(t_next > t && std::isfinite(t_next));

    for (int c = 0; c < cores; ++c) {
      const int task = core_task[static_cast<std::size_t>(c)];
      if (task < 0) continue;
      const auto i = static_cast<std::size_t>(task);
      result.schedule.add({task, c, t, t_next, frequency[i]});
      last_core[i] = c;
      remaining[i] -= t_next - t;
      if (remaining[i] <= tol * std::max(1.0, tasks[i].work / frequency[i])) {
        remaining[i] = 0.0;
        completion[i] = t_next;
        --unfinished;
        core_task[static_cast<std::size_t>(c)] = -1;
      }
    }
    t = t_next;
  }

  for (std::size_t i = 0; i < n; ++i) {
    result.missed[i] = completion[i] > tasks[i].deadline + 1e-9;
  }
  result.schedule.coalesce();
  return result;
}

}  // namespace easched
