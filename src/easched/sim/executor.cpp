#include "easched/sim/executor.hpp"

#include <algorithm>
#include <sstream>

#include "easched/common/contracts.hpp"
#include "easched/sim/engine.hpp"

namespace easched {

PowerFunction power_function(const PowerModel& model) {
  return [model](double f) { return model.power(f); };
}

PowerFunction power_function(const DiscreteLevels& levels) {
  return [levels](double f) { return levels.power_at(f); };
}

bool ExecutionReport::all_deadlines_met() const {
  return std::all_of(tasks.begin(), tasks.end(),
                     [](const TaskOutcome& t) { return t.deadline_met; });
}

std::size_t ExecutionReport::missed_deadline_count() const {
  return static_cast<std::size_t>(std::count_if(
      tasks.begin(), tasks.end(), [](const TaskOutcome& t) { return !t.deadline_met; }));
}

namespace {

/// Mutable execution state shared by the event callbacks.
struct ExecutionState {
  const TaskSet* tasks = nullptr;
  const PowerFunction* power = nullptr;
  ExecutionReport report;
  /// Segment currently occupying each core (-1 when idle).
  std::vector<int> core_busy_until_segment;
  /// Cores concurrently used by each task (detects task self-overlap).
  std::vector<int> task_active_count;

  void note(const std::string& msg) { report.anomalies.push_back(msg); }
};

std::string segment_text(const Segment& s) {
  std::ostringstream os;
  os << "task " << s.task << " core " << s.core << " [" << s.start << "," << s.end << ")";
  return os.str();
}

}  // namespace

ExecutionReport execute_schedule(const TaskSet& tasks, const Schedule& schedule,
                                 const PowerFunction& power, double work_tol) {
  EASCHED_EXPECTS(power != nullptr);
  const int cores = std::max(schedule.core_count(), 1);

  ExecutionState state;
  state.tasks = &tasks;
  state.power = &power;
  state.report.tasks.assign(tasks.size(), TaskOutcome{});
  state.core_busy_until_segment.assign(static_cast<std::size_t>(cores), -1);
  state.task_active_count.assign(tasks.size(), 0);

  SimulationEngine engine;
  const auto& segments = schedule.segments();

  // Filter out segments the machine cannot express before building events.
  std::vector<char> usable(segments.size(), 1);
  for (std::size_t idx = 0; idx < segments.size(); ++idx) {
    const Segment& seg = segments[idx];
    if (seg.task < 0 || static_cast<std::size_t>(seg.task) >= tasks.size()) {
      state.note("segment references unknown task: " + segment_text(seg));
      usable[idx] = 0;
    } else if (seg.core < 0 || seg.core >= cores) {
      state.note("segment uses core outside the machine: " + segment_text(seg));
      usable[idx] = 0;
    }
  }

  // End events are scheduled before start events so that, at equal times,
  // a segment releasing a core dispatches before an abutting segment claims
  // it (the engine breaks time ties by scheduling order).
  for (std::size_t idx = 0; idx < segments.size(); ++idx) {
    if (!usable[idx]) continue;
    const Segment& seg = segments[idx];
    engine.schedule_at(seg.end, [&state, &seg, work_tol](SimulationEngine& eng) {
      auto& busy = state.core_busy_until_segment[static_cast<std::size_t>(seg.core)];
      busy = -1;
      --state.task_active_count[static_cast<std::size_t>(seg.task)];

      // Account the finished segment: energy and completed work, with the
      // completion instant interpolated inside the segment if the
      // requirement is crossed here.
      state.report.energy += (*state.power)(seg.frequency) * seg.duration();
      TaskOutcome& outcome = state.report.tasks[static_cast<std::size_t>(seg.task)];
      const double before = outcome.completed_work;
      outcome.completed_work += seg.work();
      const double required = state.tasks->at(seg.task).work;
      if (before < required && outcome.completed_work >= required * (1.0 - work_tol)) {
        const double missing = std::max(0.0, required - before);
        const double dt = std::min(seg.duration(), missing / seg.frequency);
        outcome.completion_time = std::min(outcome.completion_time, seg.start + dt);
        (void)eng;
      }
    });
  }
  for (std::size_t idx = 0; idx < segments.size(); ++idx) {
    if (!usable[idx]) continue;
    const Segment& seg = segments[idx];
    engine.schedule_at(seg.start, [&state, &seg, idx](SimulationEngine&) {
      auto& busy = state.core_busy_until_segment[static_cast<std::size_t>(seg.core)];
      if (busy >= 0) {
        state.note("core conflict at segment start: " + segment_text(seg));
      }
      busy = static_cast<int>(idx);
      auto& active = state.task_active_count[static_cast<std::size_t>(seg.task)];
      if (++active > 1) {
        state.note("task executes on two cores at once: " + segment_text(seg));
      }
    });
  }

  engine.run();
  state.report.events = engine.dispatched();

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TaskOutcome& outcome = state.report.tasks[i];
    const Task& t = tasks[i];
    outcome.deadline_met = outcome.completed_work >= t.work * (1.0 - work_tol) &&
                           outcome.completion_time <= t.deadline + 1e-7;
    if (outcome.completed_work < t.work * (1.0 - work_tol)) {
      std::ostringstream os;
      os << "task " << i << " under-served: " << outcome.completed_work << " of " << t.work;
      state.note(os.str());
    }
  }
  return state.report;
}

}  // namespace easched
