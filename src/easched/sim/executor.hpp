#pragma once

/// \file executor.hpp
/// \brief Execute a planned `Schedule` on simulated cores.
///
/// The executor replays a schedule through the discrete-event engine: one
/// event per segment start and end. It integrates energy from an arbitrary
/// power function (continuous model or a discrete ladder lookup), accumulates
/// completed work per task, records exact completion instants, and flags
/// runtime anomalies (core conflicts, work shortfalls, deadline misses).
/// This is the ground truth the analytic energy formulas are tested against.

#include <functional>
#include <string>
#include <vector>

#include "easched/common/math.hpp"
#include "easched/power/discrete_levels.hpp"
#include "easched/power/power_model.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Active power as a function of frequency.
using PowerFunction = std::function<double(double frequency)>;

/// Adapt a continuous model.
PowerFunction power_function(const PowerModel& model);

/// Adapt a discrete ladder: frequencies must be operating points.
PowerFunction power_function(const DiscreteLevels& levels);

/// Per-task outcome of an execution run.
struct TaskOutcome {
  double completed_work = 0.0;
  /// Instant the cumulative work first reached the requirement (+inf when
  /// the schedule never completes the task).
  double completion_time = kInf;
  bool deadline_met = false;
};

/// Result of executing a schedule.
struct ExecutionReport {
  double energy = 0.0;
  std::vector<TaskOutcome> tasks;
  /// Human-readable runtime anomalies (empty for a valid schedule).
  std::vector<std::string> anomalies;
  std::size_t events = 0;

  bool all_deadlines_met() const;
  std::size_t missed_deadline_count() const;
};

/// Run `schedule` for `tasks`. `work_tol` is the relative tolerance for
/// declaring an execution requirement met.
ExecutionReport execute_schedule(const TaskSet& tasks, const Schedule& schedule,
                                 const PowerFunction& power, double work_tol = 1e-6);

}  // namespace easched
