#pragma once

/// \file edf.hpp
/// \brief Online global-EDF dispatcher at fixed per-task frequencies.
///
/// The paper argues its schedulers are "easy to implement in a practical
/// system": once the final frequencies `f_i` are fixed, a plain run-time
/// dispatcher suffices. This module provides that dispatcher — global
/// preemptive EDF on `m` cores, each task executing at its assigned
/// frequency — and materializes the resulting `Schedule`. Unlike the
/// subinterval packing, EDF is an *online* policy, so it may miss deadlines
/// the offline packing meets; the result records any misses.

#include <vector>

#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Result of an EDF dispatch run.
struct EdfResult {
  Schedule schedule;          ///< all work executed (possibly past deadlines)
  std::vector<bool> missed;   ///< per task: completed after its deadline
  std::size_t preemptions = 0;
  std::size_t migrations = 0;

  bool feasible() const;
  std::size_t miss_count() const;
};

/// Run global EDF. `frequency[i] > 0` is task `i`'s execution frequency.
/// Ties in deadlines resolve by task id. Tasks keep executing past their
/// deadlines until complete, so the energy accounting stays comparable.
EdfResult edf_dispatch(const TaskSet& tasks, int cores, const std::vector<double>& frequency);

}  // namespace easched
