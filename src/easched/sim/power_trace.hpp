#pragma once

/// \file power_trace.hpp
/// \brief Piecewise-constant total-power profile of a schedule.
///
/// For plotting, reporting, and as an independent energy cross-check: the
/// profile lists every instant the machine's total active power changes
/// (segment starts/ends), and integrating it must reproduce the schedule's
/// energy exactly.

#include <string>
#include <vector>

#include "easched/sched/schedule.hpp"
#include "easched/sim/executor.hpp"

namespace easched {

/// One step of the piecewise-constant profile: total power is `power` on
/// `[begin, end)`.
struct PowerStep {
  double begin = 0.0;
  double end = 0.0;
  double power = 0.0;

  double energy() const { return power * (end - begin); }
};

/// The machine-wide power profile of a schedule.
class PowerTrace {
 public:
  /// Build from a schedule and a power function (continuous or ladder).
  PowerTrace(const Schedule& schedule, const PowerFunction& power);

  const std::vector<PowerStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// Total energy = Σ step energies (matches `Schedule::energy`).
  double total_energy() const;

  /// Peak total power across the horizon.
  double peak_power() const;

  /// Average power over the busy horizon [first start, last end].
  double average_power() const;

  /// Total power at time `t` (0 outside every step).
  double power_at(double t) const;

  /// Serialize as CSV `begin,end,power` for external plotting.
  std::string to_csv() const;

 private:
  std::vector<PowerStep> steps_;
};

}  // namespace easched
