#pragma once

/// \file histogram.hpp
/// \brief Fixed-bucket histograms with deterministic quantile estimates.
///
/// The registry's original sampled histograms keep exact samples (decimated
/// under load) — good fidelity, but the dump cost grows with retention and
/// two dumps of the same traffic can disagree once decimation strides
/// diverge. Fixed-bucket histograms are the exposition-friendly complement:
/// O(#buckets) memory and dump cost, mergeable across per-thread shards by
/// plain addition, and directly renderable as Prometheus `_bucket{le=...}`
/// series. Quantiles (p50/p90/p99) are derived from the bucket counts by
/// linear interpolation inside the holding bucket, so they are reproducible
/// from any dump of the same counts.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace easched::obs {

/// Default latency bucket upper bounds in microseconds: 1-2-5 decades from
/// 1 µs to 10 s. Chosen so p50/p90/p99 of both sub-millisecond kernel
/// stages and multi-second soak tails land in populated buckets.
const std::vector<double>& default_latency_buckets_us();

/// Power-of-two bounds {1, 2, 4, ..., 2^(n-1)} for size-like quantities
/// (queue depth, cache ages in operations).
std::vector<double> pow2_buckets(std::size_t n);

/// A histogram over fixed, strictly increasing upper bounds. Observation
/// `v` lands in the first bucket with `v <= bound` (bounds are inclusive
/// upper edges, Prometheus `le` semantics); values above every bound land
/// in the implicit overflow (+Inf) bucket. There is no distinct underflow
/// bucket: the first bucket spans (-inf, bound0].
class BucketHistogram {
 public:
  /// Empty histogram; `upper_bounds` must be strictly increasing and
  /// non-empty (contract-checked).
  explicit BucketHistogram(std::vector<double> upper_bounds);
  BucketHistogram() : BucketHistogram(default_latency_buckets_us()) {}

  void observe(double value);

  /// Add another shard's counts into this one. Bounds must match exactly
  /// (contract-checked) — shards of one logical histogram share bounds by
  /// construction.
  void merge(const BucketHistogram& other);

  /// \name Readers
  /// @{
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const;

  /// Quantile estimate for `q` in [0, 1]: locate the bucket holding the
  /// q-th observation, interpolate linearly between its edges (clamped to
  /// the observed min/max so estimates never leave the data range). The
  /// overflow bucket reports the observed max. 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; `counts().back()` is the overflow bucket, so
  /// `counts().size() == upper_bounds().size() + 1`.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  /// @}

  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace easched::obs
