#include "easched/obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace easched::obs {

namespace {

std::atomic<Tracer*> g_current{nullptr};
std::atomic<bool> g_suppressed{false};
std::atomic<std::uint64_t> g_next_epoch_id{1};

/// Per-thread recording slot. Caching the owning tracer's epoch id (not its
/// address) makes a freed-and-reallocated tracer impossible to confuse with
/// the one that registered the buffer.
struct ThreadSlot {
  std::uint64_t tracer_epoch = 0;
  void* buffer = nullptr;
};

thread_local ThreadSlot t_slot;
thread_local std::uint64_t t_current_request = 0;
thread_local std::uint64_t t_current_parent = 0;

/// JSON string escaping for the few dynamic strings in the export.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u0020";
    } else {
      out.push_back(c);
    }
  }
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
    return;
  }
  std::ostringstream tmp;
  tmp.precision(15);
  tmp << v;
  out += tmp.str();
}

}  // namespace

Tracer::Tracer(TracerOptions options)
    : epoch_id_(g_next_epoch_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()),
      options_(options) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer& Tracer::local_buffer() {
  if (t_slot.tracer_epoch == epoch_id_) {
    return *static_cast<ThreadBuffer*>(t_slot.buffer);
  }
  std::lock_guard lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  // Rings grow geometrically (std::vector) up to `capacity`; eager
  // allocation of the full ring would cost ~25 MiB per recording thread.
  buffer->capacity = options_.ring_capacity;
  buffer->ring.reserve(std::min<std::size_t>(options_.ring_capacity, 1024));
  buffer->index = static_cast<std::uint32_t>(buffers_.size());
  ThreadBuffer& out = *buffer;
  buffers_.push_back(std::move(buffer));
  t_slot.tracer_epoch = epoch_id_;
  t_slot.buffer = &out;
  return out;
}

void Tracer::push(ThreadBuffer& buffer, const SpanRecord& record) {
  if (buffer.ring.size() >= buffer.capacity) {
    ++buffer.dropped;  // ring full: newest spans are the ones sacrificed
    return;
  }
  buffer.ring.push_back(record);
}

std::vector<SpanRecord> Tracer::records() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out;
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->ring.size();
  out.reserve(total);
  for (const auto& buffer : buffers_) {
    out.insert(out.end(), buffer->ring.begin(), buffer->ring.end());
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->dropped;
  return total;
}

std::size_t Tracer::thread_count() const {
  std::lock_guard lock(mutex_);
  return buffers_.size();
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = records();
  std::uint32_t max_thread = 0;
  for (const SpanRecord& s : spans) max_thread = std::max(max_thread, s.thread);

  std::string out;
  out.reserve(160 * spans.size() + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"easched\"}}";
  for (std::uint32_t t = 0; t <= max_thread; ++t) {
    out += ",{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(t);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"trace-thread-";
    out += std::to_string(t);
    out += "\"}}";
  }
  for (const SpanRecord& s : spans) {
    out += ",{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(s.thread);
    out += ",\"name\":\"";
    append_escaped(out, s.name);
    // Timestamps in fractional microseconds (trace_event's native unit).
    out += "\",\"ts\":";
    append_double(out, static_cast<double>(s.start_ns) / 1e3);
    out += ",\"dur\":";
    append_double(out, static_cast<double>(s.dur_ns) / 1e3);
    out += ",\"args\":{\"span\":";
    out += std::to_string(s.id);
    out += ",\"parent\":";
    out += std::to_string(s.parent);
    if (s.request != 0) {
      out += ",\"request\":";
      out += std::to_string(s.request);
    }
    if (s.arg0_name != nullptr) {
      out += ",\"";
      append_escaped(out, s.arg0_name);
      out += "\":";
      append_double(out, s.arg0);
    }
    if (s.arg1_name != nullptr) {
      out += ",\"";
      append_escaped(out, s.arg1_name);
      out += "\":";
      append_double(out, s.arg1);
    }
    if (s.status != nullptr) {
      out += ",\"status\":\"";
      append_escaped(out, s.status);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void Tracer::write_chrome_trace(std::ostream& out) const { out << chrome_trace_json(); }

Tracer* current() noexcept {
  // Load the tracer first: the no-tracer fast path (the only one production
  // code sees, and the one the perf gate holds at one atomic load) never
  // touches the suppression flag.
  Tracer* tracer = g_current.load(std::memory_order_acquire);
  if (tracer == nullptr) return nullptr;
  return g_suppressed.load(std::memory_order_relaxed) ? nullptr : tracer;
}

void set_tracing_suppressed(bool suppressed) noexcept {
  g_suppressed.store(suppressed, std::memory_order_relaxed);
}

bool tracing_suppressed() noexcept { return g_suppressed.load(std::memory_order_relaxed); }

TraceScope::TraceScope(Tracer& tracer)
    : previous_(g_current.exchange(&tracer, std::memory_order_acq_rel)) {}

TraceScope::~TraceScope() { g_current.store(previous_, std::memory_order_release); }

std::uint64_t current_request() noexcept { return t_current_request; }

std::uint64_t current_parent_span() noexcept { return t_current_parent; }

RequestScope::RequestScope(std::uint64_t request_id) : previous_(t_current_request) {
  t_current_request = request_id;
}

RequestScope::~RequestScope() { t_current_request = previous_; }

ParentScope::ParentScope(std::uint64_t parent_span) : previous_(t_current_parent) {
  t_current_parent = parent_span;
}

ParentScope::~ParentScope() { t_current_parent = previous_; }

Span::Span(const char* name) noexcept : tracer_(current()) {
  if (tracer_ == nullptr) return;
  Tracer::ThreadBuffer& buffer = tracer_->local_buffer();
  record_.name = name;
  record_.thread = buffer.index;
  // Span ids pack (thread index + 1, per-thread sequence): unique within
  // the tracer without any cross-thread coordination.
  record_.id = (static_cast<std::uint64_t>(buffer.index + 1) << 40) | ++buffer.next_seq;
  record_.parent = t_current_parent;
  record_.request = t_current_request;
  saved_parent_ = t_current_parent;
  t_current_parent = record_.id;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  t_current_parent = saved_parent_;
  record_.start_ns =
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, (start_ - tracer_->epoch()).count()));
  record_.dur_ns = static_cast<std::uint64_t>(std::max<std::int64_t>(0, (end - start_).count()));
  Tracer::push(tracer_->local_buffer(), record_);
}

void Span::arg(const char* name, double value) noexcept {
  if (tracer_ == nullptr) return;
  if (record_.arg0_name == nullptr) {
    record_.arg0_name = name;
    record_.arg0 = value;
  } else if (record_.arg1_name == nullptr) {
    record_.arg1_name = name;
    record_.arg1 = value;
  }
}

void Span::set_status(const char* status) noexcept {
  if (tracer_ == nullptr) return;
  record_.status = status;
}

void emit(const char* name, std::chrono::steady_clock::time_point start,
          std::chrono::steady_clock::time_point end, std::uint64_t request) {
  Tracer* tracer = current();
  if (tracer == nullptr) return;
  Tracer::ThreadBuffer& buffer = tracer->local_buffer();
  SpanRecord record;
  record.name = name;
  record.thread = buffer.index;
  record.id = (static_cast<std::uint64_t>(buffer.index + 1) << 40) | ++buffer.next_seq;
  record.parent = t_current_parent;
  record.request = request != 0 ? request : t_current_request;
  record.start_ns = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, (start - tracer->epoch()).count()));
  record.dur_ns =
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, (end - start).count()));
  Tracer::push(buffer, record);
}

}  // namespace easched::obs
