#include "easched/obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace easched::obs {

const std::vector<double>& default_latency_buckets_us() {
  static const std::vector<double> kBuckets = {
      1,    2,    5,    10,   20,    50,    100,   200,     500,
      1e3,  2e3,  5e3,  1e4,  2e4,   5e4,   1e5,   2e5,     5e5,
      1e6,  2e6,  5e6,  1e7,
  };
  return kBuckets;
}

std::vector<double> pow2_buckets(std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double v = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(v);
    v *= 2.0;
  }
  return bounds;
}

BucketHistogram::BucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("BucketHistogram: bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("BucketHistogram: bounds must be strictly increasing");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void BucketHistogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void BucketHistogram::merge(const BucketHistogram& other) {
  if (other.bounds_ != bounds_) {
    throw std::invalid_argument("BucketHistogram::merge: bucket bounds differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double BucketHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double BucketHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil so q=1 is the last one).
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (cumulative + counts_[i] < rank) {
      cumulative += counts_[i];
      continue;
    }
    if (i == counts_.size() - 1) return max_;  // overflow bucket: best bound is the max
    const double upper = std::min(bounds_[i], max_);
    const double lower = std::max(i == 0 ? min_ : bounds_[i - 1], min_);
    if (upper <= lower) return upper;
    const double within =
        static_cast<double>(rank - cumulative) / static_cast<double>(counts_[i]);
    return lower + within * (upper - lower);
  }
  return max_;
}

void BucketHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace easched::obs
