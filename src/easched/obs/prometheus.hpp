#pragma once

/// \file prometheus.hpp
/// \brief Prometheus text-exposition rendering of a MetricsSnapshot.
///
/// Renders the same data as `MetricsRegistry::dump()` in the Prometheus
/// text format (version 0.0.4): `# TYPE` headers, `_bucket{le="..."}` /
/// `_sum` / `_count` series for fixed-bucket histograms, and
/// `{quantile="..."}` summary series for the sampled histograms. Works from
/// a `MetricsSnapshot`, never the live registry, so exposition cannot
/// contend with the admission path.

#include <iosfwd>
#include <string>
#include <string_view>

#include "easched/service/metrics.hpp"

namespace easched::obs {

/// Map an arbitrary registry metric name onto the Prometheus name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, prefixing `prefix` (default `easched_`).
/// Characters outside the charset become `_`.
std::string prometheus_metric_name(std::string_view name,
                                   std::string_view prefix = "easched_");

/// Render `snapshot` in Prometheus text-exposition format. Counters become
/// `counter` series, gauges `gauge`, bucketed histograms full `histogram`
/// families (cumulative `_bucket{le=...}` including `+Inf`, `_sum`,
/// `_count`), and sampled histograms `summary` families with
/// p50/p90/p99 quantile labels.
std::string to_prometheus(const MetricsSnapshot& snapshot,
                          std::string_view prefix = "easched_");
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot,
                      std::string_view prefix = "easched_");

}  // namespace easched::obs
