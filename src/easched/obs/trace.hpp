#pragma once

/// \file trace.hpp
/// \brief Structured tracing: RAII spans into per-thread ring buffers,
///        exportable as Chrome `trace_event` JSON.
///
/// The tracer answers "where did this request's milliseconds go" the way
/// per-phase cost attribution does in the reclamation literature: every
/// pipeline stage, solver iteration, fallback rung, and service lifecycle
/// step opens a `Span`, and the resulting tree (spans carry parent ids and
/// a request id that survives thread-pool hops) loads directly into
/// `chrome://tracing` / Perfetto.
///
/// **Zero cost when idle.** Like `faults/fault_injection.hpp`, the tracer
/// is compiled in always and armed via a process-wide atomic pointer: a
/// disabled `Span` constructor is one relaxed atomic load and a branch, and
/// nothing else — no clock read, no allocation. Production code never pays
/// more than that unless a `TraceScope` is installed (CLI `--trace`, bench
/// `--trace=`, tests).
///
/// **Determinism.** Spans *record*, they never reorder or gate work: no
/// instrumented function branches on the tracer beyond "record or don't".
/// The parallel kernels therefore keep their bit-identical-at-any-pool-size
/// contract with tracing enabled (asserted by
/// `tests/parallel_determinism_test.cpp`), and the *set* of spans a
/// traced computation emits is the same at any pool size — only the thread
/// attribution and timestamps differ.
///
/// **Memory.** Each recording thread owns a fixed-capacity ring buffer.
/// When a ring fills, the newest spans are dropped and counted
/// (`dropped()`), so a runaway trace degrades to a truncated one instead of
/// an allocation storm; no span is lost below ring capacity.
///
/// **Lifetime.** Installation mirrors `FaultScope`: a `TraceScope` arms the
/// tracer for its dynamic extent and must outlive every span recorded under
/// it (including pool jobs — drain them before the scope ends). Export
/// (`chrome_trace_json`) is safe once the traced work has quiesced.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace easched::obs {

/// One closed span. Names/arg names/status must point at static storage
/// (string literals or the library's *_name() tables): records never own
/// their strings, which keeps recording allocation-free after ring setup.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t id = 0;        ///< unique within one tracer
  std::uint64_t parent = 0;    ///< 0 = root
  std::uint64_t request = 0;   ///< 0 = not request-scoped
  std::uint64_t start_ns = 0;  ///< steady-clock ns since the tracer epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t thread = 0;  ///< tracer-assigned thread index
  const char* arg0_name = nullptr;
  double arg0 = 0.0;
  const char* arg1_name = nullptr;
  double arg1 = 0.0;
  const char* status = nullptr;  ///< optional outcome label ("converged", ...)
};

/// Tracer tunables.
struct TracerOptions {
  /// Spans retained per recording thread before newest-span dropping kicks
  /// in. 2^18 records ≈ 24 MiB/thread — sized for a full `serve` stream
  /// with per-iteration solver spans.
  std::size_t ring_capacity = std::size_t{1} << 18;
};

/// Collects spans from any number of threads. Threads register lazily on
/// first record; each ring is single-writer, so recording is lock-free
/// after registration.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-unique id of this tracer (guards against stale thread-local
  /// buffer pointers when tracers come and go at the same address).
  std::uint64_t epoch_id() const { return epoch_id_; }

  /// The tracer's time origin on the steady clock.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// All spans recorded so far, in (thread, record) order. Call only after
  /// the traced work has quiesced.
  std::vector<SpanRecord> records() const;

  /// Spans dropped because a ring was full.
  std::uint64_t dropped() const;

  /// Number of threads that recorded at least one span.
  std::size_t thread_count() const;

  /// Chrome `trace_event` JSON (the `{"traceEvents": [...]}` envelope):
  /// complete ("X") events in microseconds plus thread-name metadata.
  /// Loads in chrome://tracing and Perfetto.
  std::string chrome_trace_json() const;
  void write_chrome_trace(std::ostream& out) const;

 private:
  friend class Span;
  friend void emit(const char* name, std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end, std::uint64_t request);

  struct ThreadBuffer {
    std::vector<SpanRecord> ring;     ///< grows geometrically up to `capacity`
    std::size_t capacity = 0;         ///< hard record cap for this thread
    std::uint64_t next_seq = 0;       ///< per-thread span sequence
    std::uint64_t dropped = 0;        ///< records rejected after the ring filled
    std::uint32_t index = 0;          ///< tracer-assigned thread index
  };

  /// The calling thread's buffer under this tracer (registering it first if
  /// needed).
  ThreadBuffer& local_buffer();

  /// Append `record` (id/thread filled by the caller) to `buffer`.
  static void push(ThreadBuffer& buffer, const SpanRecord& record);

  std::uint64_t epoch_id_;
  std::chrono::steady_clock::time_point epoch_;
  TracerOptions options_;

  mutable std::mutex mutex_;  ///< guards `buffers_` growth (not ring writes)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// The installed tracer, or nullptr (the common, zero-cost case). Returns
/// nullptr while tracing is suppressed (see `set_tracing_suppressed`).
Tracer* current() noexcept;

/// \name Brownout suppression
/// Disarm span recording without uninstalling the tracer: the brownout
/// ladder (level ≥ 2) sheds tracing overhead while keeping the `TraceScope`
/// alive for when load recedes. Suppression is process-wide and checked
/// only when a tracer is installed, so the zero-cost disabled-span path is
/// untouched.
/// @{
void set_tracing_suppressed(bool suppressed) noexcept;
bool tracing_suppressed() noexcept;
/// @}

/// RAII installation of a tracer as the process-wide current one. Same
/// discipline as `faults::FaultScope`: installation is a CLI/bench/test
/// level act; do not overlap scopes from concurrent threads.
class TraceScope {
 public:
  explicit TraceScope(Tracer& tracer);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* previous_;
};

/// \name Request-id context
/// The id set here tags every span the thread opens and rides across
/// `ThreadPool::submit` (the pool captures the submitter's context into the
/// job). Ids are caller-chosen; 0 means "no request".
/// @{
std::uint64_t current_request() noexcept;
std::uint64_t current_parent_span() noexcept;

class RequestScope {
 public:
  explicit RequestScope(std::uint64_t request_id);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::uint64_t previous_;
};

/// Re-parents spans opened in its extent under `parent_span` — the
/// cross-thread half of span nesting (a pool job's spans hang under the
/// span that submitted it).
class ParentScope {
 public:
  explicit ParentScope(std::uint64_t parent_span);
  ~ParentScope();
  ParentScope(const ParentScope&) = delete;
  ParentScope& operator=(const ParentScope&) = delete;

 private:
  std::uint64_t previous_;
};
/// @}

/// RAII span. Construction with no tracer installed is one relaxed atomic
/// load; with a tracer it stamps the start time and becomes the thread's
/// current parent until destruction records it.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when a tracer is recording this span (use to skip arg
  /// computation that only feeds the trace).
  bool active() const noexcept { return tracer_ != nullptr; }

  /// Attach up to two named numeric args (first two calls win; extra calls
  /// are ignored). `name` must be a string literal.
  void arg(const char* name, double value) noexcept;

  /// Attach an outcome label (static storage — `*_name()` tables qualify).
  void set_status(const char* status) noexcept;

  /// This span's id (0 when inactive) — pass to `ParentScope` on another
  /// thread to nest remote work under it.
  std::uint64_t id() const noexcept { return record_.id; }

 private:
  Tracer* tracer_;
  std::uint64_t saved_parent_ = 0;
  std::chrono::steady_clock::time_point start_{};
  SpanRecord record_{};
};

/// Record an already-elapsed interval as a span on the calling thread (used
/// for queue-wait time, whose start happened on the submitting thread).
/// No-op when no tracer is installed.
void emit(const char* name, std::chrono::steady_clock::time_point start,
          std::chrono::steady_clock::time_point end, std::uint64_t request);

/// Steady-clock now, as a time_point (helper for `emit` callers that stamp
/// timestamps whether or not tracing is on).
inline std::chrono::steady_clock::time_point now() noexcept {
  return std::chrono::steady_clock::now();
}

}  // namespace easched::obs
