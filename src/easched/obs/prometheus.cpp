#include "easched/obs/prometheus.hpp"

#include <cmath>
#include <cstdint>
#include <ostream>
#include <sstream>

namespace easched::obs {

namespace {

bool name_char_ok(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') return true;
  return !first && c >= '0' && c <= '9';
}

void append_value(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(15);
  tmp << v;
  out += tmp.str();
}

void append_family(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_metric_name(std::string_view name, std::string_view prefix) {
  std::string out(prefix);
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    out.push_back(name_char_ok(c, out.empty() && i == 0) ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot, std::string_view prefix) {
  std::string out;
  out.reserve(4096);

  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prometheus_metric_name(name, prefix);
    append_family(out, metric, "counter");
    out += metric;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }

  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = prometheus_metric_name(name, prefix);
    append_family(out, metric, "gauge");
    out += metric;
    out += ' ';
    append_value(out, value);
    out += '\n';
  }

  // Fixed-bucket histograms are native Prometheus histograms: cumulative
  // bucket counts with inclusive `le` upper bounds, closed by +Inf.
  for (const auto& [name, h] : snapshot.bucketed) {
    const std::string metric = prometheus_metric_name(name, prefix);
    append_family(out, metric, "histogram");
    std::uint64_t cumulative = 0;
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.counts();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += metric;
      out += "_bucket{le=\"";
      append_value(out, bounds[i]);
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += metric;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(h.count());
    out += '\n';
    out += metric;
    out += "_sum ";
    append_value(out, h.sum());
    out += '\n';
    out += metric;
    out += "_count ";
    out += std::to_string(h.count());
    out += '\n';
  }

  // Sampled histograms carry pre-computed quantiles, which maps onto the
  // Prometheus summary type (quantiles are not aggregatable — the bucketed
  // form above is the one to prefer for new instrumentation).
  for (const auto& [name, s] : snapshot.histograms) {
    const std::string metric = prometheus_metric_name(name, prefix);
    append_family(out, metric, "summary");
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", s.p50}, {"0.9", s.p90}, {"0.99", s.p99}};
    for (const auto& [label, value] : quantiles) {
      out += metric;
      out += "{quantile=\"";
      out += label;
      out += "\"} ";
      append_value(out, value);
      out += '\n';
    }
    out += metric;
    out += "_sum ";
    append_value(out, s.sum);
    out += '\n';
    out += metric;
    out += "_count ";
    out += std::to_string(s.count);
    out += '\n';
  }

  return out;
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot,
                      std::string_view prefix) {
  out << to_prometheus(snapshot, prefix);
}

}  // namespace easched::obs
