#include "easched/tasksys/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "easched/common/contracts.hpp"

namespace easched {

TaskSet generate_bursty_workload(const BurstyConfig& config, Rng& rng) {
  EASCHED_EXPECTS(config.bursts > 0);
  EASCHED_EXPECTS(config.tasks_per_burst > 0);
  EASCHED_EXPECTS(config.horizon > 0.0);
  EASCHED_EXPECTS(config.burst_spread >= 0.0);
  EASCHED_EXPECTS(0.0 < config.work_lo && config.work_lo <= config.work_hi);
  EASCHED_EXPECTS(0.0 < config.intensity_lo && config.intensity_lo <= config.intensity_hi);

  std::vector<Task> tasks;
  tasks.reserve(config.bursts * config.tasks_per_burst);
  for (std::size_t b = 0; b < config.bursts; ++b) {
    const double center = rng.uniform(0.0, config.horizon);
    for (std::size_t k = 0; k < config.tasks_per_burst; ++k) {
      Task t;
      t.release = std::max(0.0, center + rng.uniform(-config.burst_spread,
                                                     config.burst_spread));
      t.work = rng.uniform(config.work_lo, config.work_hi);
      const double intensity = rng.uniform(config.intensity_lo, config.intensity_hi);
      t.deadline = t.release + t.work / intensity;
      tasks.push_back(t);
    }
  }
  return TaskSet(std::move(tasks));
}

TaskSet expand_periodic(const std::vector<PeriodicTaskSpec>& specs, double horizon) {
  EASCHED_EXPECTS(!specs.empty());
  EASCHED_EXPECTS(horizon > 0.0);

  std::vector<Task> jobs;
  for (const PeriodicTaskSpec& spec : specs) {
    EASCHED_EXPECTS_MSG(spec.period > 0.0, "periodic task needs a positive period");
    EASCHED_EXPECTS_MSG(spec.wcet > 0.0, "periodic task needs positive wcet");
    EASCHED_EXPECTS(spec.offset >= 0.0);
    const double deadline =
        spec.relative_deadline > 0.0 ? spec.relative_deadline : spec.period;
    EASCHED_EXPECTS_MSG(deadline >= spec.wcet / 1e9,
                        "relative deadline must be positive");

    for (double release = spec.offset; release + deadline <= horizon + 1e-12;
         release += spec.period) {
      jobs.push_back({release, release + deadline, spec.wcet});
    }
  }
  EASCHED_EXPECTS_MSG(!jobs.empty(), "horizon too short: no job fits");
  return TaskSet(std::move(jobs));
}

WorkloadStats describe_workload(const TaskSet& tasks, int cores) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);

  WorkloadStats stats;
  stats.task_count = tasks.size();
  stats.horizon = tasks.latest_deadline() - tasks.earliest_release();
  stats.total_work = tasks.total_work();
  stats.max_intensity = tasks.max_intensity();
  for (const Task& t : tasks) stats.utilization += t.intensity();
  stats.utilization /= static_cast<double>(cores);

  const SubintervalDecomposition subs(tasks);
  stats.max_overlap = subs.max_overlap();
  double heavy_time = 0.0;
  for (std::size_t j = 0; j < subs.size(); ++j) {
    if (subs[j].heavy(cores)) heavy_time += subs[j].length();
  }
  stats.heavy_time_fraction = heavy_time / stats.horizon;
  return stats;
}

}  // namespace easched
