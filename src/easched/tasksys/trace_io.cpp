#include "easched/tasksys/trace_io.hpp"

#include <stdexcept>
#include <string>

#include "easched/common/csv.hpp"
#include "easched/common/table.hpp"

namespace easched {

std::string task_set_to_csv(const TaskSet& tasks) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(tasks.size());
  for (const Task& t : tasks) {
    rows.push_back({format_fixed(t.release, 9), format_fixed(t.deadline, 9),
                    format_fixed(t.work, 9)});
  }
  return to_csv({"release", "deadline", "work"}, rows);
}

TaskSet task_set_from_csv(const std::string& text) {
  const CsvDocument doc = parse_csv(text);
  const std::size_t rel = doc.column("release");
  const std::size_t dl = doc.column("deadline");
  const std::size_t wk = doc.column("work");
  std::vector<Task> tasks;
  tasks.reserve(doc.rows.size());
  for (const auto& row : doc.rows) {
    Task t;
    try {
      t.release = std::stod(row[rel]);
      t.deadline = std::stod(row[dl]);
      t.work = std::stod(row[wk]);
    } catch (const std::exception&) {
      throw std::runtime_error("non-numeric field in task trace");
    }
    tasks.push_back(t);
  }
  return TaskSet(std::move(tasks));
}

void write_task_set(const std::string& path, const TaskSet& tasks) {
  write_file(path, task_set_to_csv(tasks));
}

TaskSet read_task_set(const std::string& path) { return task_set_from_csv(read_file(path)); }

}  // namespace easched
