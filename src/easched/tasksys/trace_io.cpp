#include "easched/tasksys/trace_io.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "easched/common/contracts.hpp"
#include "easched/common/csv.hpp"
#include "easched/common/table.hpp"

namespace easched {

std::string task_set_to_csv(const TaskSet& tasks) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(tasks.size());
  for (const Task& t : tasks) {
    rows.push_back({format_fixed(t.release, 9), format_fixed(t.deadline, 9),
                    format_fixed(t.work, 9)});
  }
  return to_csv({"release", "deadline", "work"}, rows);
}

TaskSet task_set_from_csv(const std::string& text) {
  const CsvDocument doc = parse_csv(text);
  const std::size_t rel = doc.column("release");
  const std::size_t dl = doc.column("deadline");
  const std::size_t wk = doc.column("work");
  std::vector<Task> tasks;
  tasks.reserve(doc.rows.size());
  for (const auto& row : doc.rows) {
    Task t;
    try {
      t.release = std::stod(row[rel]);
      t.deadline = std::stod(row[dl]);
      t.work = std::stod(row[wk]);
    } catch (const std::exception&) {
      throw std::runtime_error("non-numeric field in task trace");
    }
    tasks.push_back(t);
  }
  return TaskSet(std::move(tasks));
}

std::string task_trace_to_csv(const TaskTrace& trace) {
  if (!trace.has_acet()) return task_set_to_csv(trace.tasks);
  EASCHED_EXPECTS(trace.acet.size() == trace.tasks.size());
  std::vector<std::vector<std::string>> rows;
  rows.reserve(trace.tasks.size());
  for (std::size_t i = 0; i < trace.tasks.size(); ++i) {
    const Task& t = trace.tasks[i];
    rows.push_back({format_fixed(t.release, 9), format_fixed(t.deadline, 9),
                    format_fixed(t.work, 9), format_fixed(trace.acet[i], 9)});
  }
  return to_csv({"release", "deadline", "work", "acet"}, rows);
}

TaskTrace task_trace_from_csv(const std::string& text) {
  TaskTrace trace;
  trace.tasks = task_set_from_csv(text);
  const CsvDocument doc = parse_csv(text);
  std::size_t acet_col = doc.header.size();
  for (std::size_t c = 0; c < doc.header.size(); ++c) {
    if (doc.header[c] == "acet") acet_col = c;
  }
  if (acet_col == doc.header.size()) return trace;  // no acet column: ACET = WCET
  trace.acet.reserve(doc.rows.size());
  for (std::size_t r = 0; r < doc.rows.size(); ++r) {
    double a = 0.0;
    try {
      a = std::stod(doc.rows[r][acet_col]);
    } catch (const std::exception&) {
      throw std::runtime_error("non-numeric acet field in task trace");
    }
    // format_fixed rounds to 9 decimals, so a stored ACET that equalled the
    // WCET may read back a hair above the independently rounded work field.
    const double work = trace.tasks[r].work;
    if (!(a > 0.0) || a > work * (1.0 + 1e-9) + 1e-9) {
      throw std::runtime_error("acet out of range (need 0 < acet <= work) in task trace row " +
                               std::to_string(r));
    }
    trace.acet.push_back(std::min(a, work));
  }
  return trace;
}

void write_task_set(const std::string& path, const TaskSet& tasks) {
  write_file(path, task_set_to_csv(tasks));
}

TaskSet read_task_set(const std::string& path) { return task_set_from_csv(read_file(path)); }

void write_task_trace(const std::string& path, const TaskTrace& trace) {
  write_file(path, task_trace_to_csv(trace));
}

TaskTrace read_task_trace(const std::string& path) {
  return task_trace_from_csv(read_file(path));
}

}  // namespace easched
