#pragma once

/// \file task.hpp
/// \brief The aperiodic task model of the paper (Section III-A).

#include <cstdint>

namespace easched {

/// Index type for tasks within a `TaskSet`.
using TaskId = std::int32_t;

/// Index type for processing cores.
using CoreId = std::int32_t;

/// An independent preemptive aperiodic task `τ_i = (R_i, D_i, C_i)`.
///
/// `work` is the execution requirement in cycles (at frequency `f`, executing
/// for time `t` completes `f·t` units of work). Time and frequency units are
/// arbitrary but must be consistent: with frequencies in MHz and time in
/// seconds, `work` is in megacycles.
struct Task {
  double release = 0.0;   ///< R_i: earliest time the task may execute.
  double deadline = 0.0;  ///< D_i: latest time the task must be finished.
  double work = 0.0;      ///< C_i: execution requirement (> 0).

  /// Laxity window length D_i − R_i.
  double window() const { return deadline - release; }

  /// The task's intensity C_i / (D_i − R_i): the minimum constant frequency
  /// at which it can finish if it may run whenever it is live.
  double intensity() const { return work / window(); }

  friend bool operator==(const Task&, const Task&) = default;
};

}  // namespace easched
