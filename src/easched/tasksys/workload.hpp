#pragma once

/// \file workload.hpp
/// \brief Synthetic workload generators reproducing Section VI's setup.
///
/// The paper generates releases uniformly on [0, 200], work uniformly on
/// [10, 30], draws a task *intensity* from a discrete set (or a continuous
/// range), and derives the deadline as `D_i = R_i + C_i / intensity_i`. The
/// practical Intel-XScale experiment (Section VI-C) scales work to
/// [4000, 8000] megacycles and anchors deadlines on the second frequency
/// level: `D_i = R_i + C_i / (intensity_i · f2)`.

#include <cstdint>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// How task intensities are drawn.
struct IntensityDistribution {
  /// Discrete uniform over `choices` when non-empty; otherwise continuous
  /// uniform over `[lo, hi]`.
  std::vector<double> choices;
  double lo = 0.1;
  double hi = 1.0;

  /// The paper's default grid {0.1, 0.2, …, 1.0}.
  static IntensityDistribution paper_grid();
  /// Continuous uniform over `[lo, 1.0]` (Fig 9 sweeps `lo`).
  static IntensityDistribution range(double lo, double hi = 1.0);

  double sample(Rng& rng) const;
};

/// Parameters of the synthetic generator (paper Section VI defaults).
struct WorkloadConfig {
  std::size_t task_count = 20;
  double release_lo = 0.0;
  double release_hi = 200.0;
  double work_lo = 10.0;
  double work_hi = 30.0;
  IntensityDistribution intensity = IntensityDistribution::paper_grid();
  /// Deadline scale: `D_i = R_i + C_i / (intensity_i · deadline_freq_scale)`.
  /// 1.0 for the abstract model; `f2` (MHz) for the XScale experiment so that
  /// intensities stay in (0, 1] relative to that frequency level.
  double deadline_freq_scale = 1.0;

  /// The Intel-XScale practical configuration of Section VI-C.
  static WorkloadConfig xscale(std::size_t task_count = 20, double f2_mhz = 400.0);
};

/// Draw one task set. All randomness comes from `rng`.
TaskSet generate_workload(const WorkloadConfig& config, Rng& rng);

}  // namespace easched
