#pragma once

/// \file arrivals.hpp
/// \brief Additional workload models beyond the paper's uniform generator.
///
/// Two arrival patterns a deployment actually sees, plus descriptive
/// statistics:
///  * **bursty** arrivals — releases cluster into bursts (interrupt storms,
///    batch submissions), the regime where heavy subintervals dominate and
///    the allocators differ the most;
///  * **periodic expansion** — classic periodic task specs unrolled into
///    their aperiodic job sets over a horizon, connecting this library's
///    general model to the frame-based/periodic literature the paper cites.

#include <cstddef>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Bursty arrival generator configuration.
struct BurstyConfig {
  std::size_t bursts = 4;              ///< number of release clusters
  std::size_t tasks_per_burst = 5;     ///< tasks in each cluster
  double horizon = 200.0;              ///< burst centers uniform on [0, horizon]
  double burst_spread = 2.0;           ///< release jitter within a cluster
  double work_lo = 10.0;               ///< per-task work range
  double work_hi = 30.0;
  /// Deadline laxity: window = work / intensity with intensity uniform in
  /// [intensity_lo, intensity_hi].
  double intensity_lo = 0.3;
  double intensity_hi = 1.0;
};

/// Draw one bursty task set.
TaskSet generate_bursty_workload(const BurstyConfig& config, Rng& rng);

/// A classic periodic task: releases a job every `period` starting at
/// `offset`, each needing `wcet` work within `relative_deadline`.
struct PeriodicTaskSpec {
  double period = 0.0;
  double wcet = 0.0;
  double relative_deadline = 0.0;  ///< 0 means "= period" (implicit deadline)
  double offset = 0.0;
};

/// Unroll periodic specs into the aperiodic job set over `[0, horizon]`.
/// Jobs whose absolute deadline would exceed the horizon are not emitted,
/// so the resulting set is exactly schedulable within the horizon.
TaskSet expand_periodic(const std::vector<PeriodicTaskSpec>& specs, double horizon);

/// Descriptive statistics of a workload on an `m`-core platform.
struct WorkloadStats {
  std::size_t task_count = 0;
  double horizon = 0.0;             ///< D̄ − R̄
  double total_work = 0.0;          ///< Σ C_i
  double utilization = 0.0;         ///< Σ intensity_i / m
  double max_intensity = 0.0;       ///< max_i C_i/(D_i−R_i)
  std::size_t max_overlap = 0;      ///< max_j n_j
  double heavy_time_fraction = 0.0; ///< fraction of the horizon that is heavy
};

/// Compute workload statistics (builds a decomposition internally).
WorkloadStats describe_workload(const TaskSet& tasks, int cores);

}  // namespace easched
