#include "easched/tasksys/workload.hpp"

#include "easched/common/contracts.hpp"

namespace easched {

IntensityDistribution IntensityDistribution::paper_grid() {
  IntensityDistribution d;
  d.choices = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  return d;
}

IntensityDistribution IntensityDistribution::range(double lo, double hi) {
  EASCHED_EXPECTS(lo > 0.0 && lo <= hi);
  IntensityDistribution d;
  d.lo = lo;
  d.hi = hi;
  return d;
}

double IntensityDistribution::sample(Rng& rng) const {
  if (!choices.empty()) return rng.pick(choices);
  return rng.uniform(lo, hi);
}

WorkloadConfig WorkloadConfig::xscale(std::size_t task_count, double f2_mhz) {
  EASCHED_EXPECTS(f2_mhz > 0.0);
  WorkloadConfig c;
  c.task_count = task_count;
  c.work_lo = 4000.0;  // megacycles
  c.work_hi = 8000.0;
  c.intensity = IntensityDistribution::range(0.1, 1.0);
  c.deadline_freq_scale = f2_mhz;
  return c;
}

TaskSet generate_workload(const WorkloadConfig& config, Rng& rng) {
  EASCHED_EXPECTS(config.task_count > 0);
  EASCHED_EXPECTS(config.release_lo <= config.release_hi);
  EASCHED_EXPECTS(0.0 < config.work_lo && config.work_lo <= config.work_hi);
  EASCHED_EXPECTS(config.deadline_freq_scale > 0.0);

  std::vector<Task> tasks;
  tasks.reserve(config.task_count);
  for (std::size_t i = 0; i < config.task_count; ++i) {
    Task t;
    t.release = rng.uniform(config.release_lo, config.release_hi);
    t.work = rng.uniform(config.work_lo, config.work_hi);
    const double intensity = config.intensity.sample(rng);
    EASCHED_ASSERT(intensity > 0.0);
    t.deadline = t.release + t.work / (intensity * config.deadline_freq_scale);
    tasks.push_back(t);
  }
  return TaskSet(std::move(tasks));
}

}  // namespace easched
