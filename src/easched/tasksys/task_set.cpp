#include "easched/tasksys/task_set.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "easched/common/contracts.hpp"

namespace easched {

TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  if (tasks_.empty()) return;
  earliest_release_ = std::numeric_limits<double>::infinity();
  latest_deadline_ = -std::numeric_limits<double>::infinity();
  for (const Task& t : tasks_) {
    EASCHED_EXPECTS_MSG(std::isfinite(t.release) && std::isfinite(t.deadline) &&
                            std::isfinite(t.work),
                        "task fields must be finite");
    EASCHED_EXPECTS_MSG(t.work > 0.0, "task work must be positive");
    EASCHED_EXPECTS_MSG(t.deadline > t.release, "task deadline must exceed release");
    earliest_release_ = std::min(earliest_release_, t.release);
    latest_deadline_ = std::max(latest_deadline_, t.deadline);
    total_work_ += t.work;
  }
}

const Task& TaskSet::at(TaskId id) const {
  EASCHED_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < tasks_.size());
  return tasks_[static_cast<std::size_t>(id)];
}

double TaskSet::max_intensity() const {
  double best = 0.0;
  for (const Task& t : tasks_) best = std::max(best, t.intensity());
  return best;
}

std::vector<TaskId> TaskSet::live_during(double t1, double t2) const {
  EASCHED_EXPECTS(t1 <= t2);
  std::vector<TaskId> out;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].release <= t1 && tasks_[i].deadline >= t2) {
      out.push_back(static_cast<TaskId>(i));
    }
  }
  return out;
}

}  // namespace easched
