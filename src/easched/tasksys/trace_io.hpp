#pragma once

/// \file trace_io.hpp
/// \brief Persist task sets as CSV traces (`release,deadline,work`).
///
/// Examples ship with traces so users can feed their own task sets into the
/// schedulers without touching C++.

#include <string>

#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Serialize a task set to CSV text with header `release,deadline,work`.
std::string task_set_to_csv(const TaskSet& tasks);

/// Parse a task set from CSV text (columns may appear in any order; extra
/// columns are ignored). Throws on malformed input.
TaskSet task_set_from_csv(const std::string& text);

/// File-based convenience wrappers.
void write_task_set(const std::string& path, const TaskSet& tasks);
TaskSet read_task_set(const std::string& path);

}  // namespace easched
