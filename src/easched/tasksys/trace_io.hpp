#pragma once

/// \file trace_io.hpp
/// \brief Persist task sets as CSV traces (`release,deadline,work[,acet]`).
///
/// Examples ship with traces so users can feed their own task sets into the
/// schedulers without touching C++.
///
/// The optional `acet` column records each job's *actual* execution time
/// requirement (`0 < acet ≤ work`), the ground truth the online runtime
/// (`runtime/`) replays when jobs finish before their WCET budget. The
/// format is backward compatible in both directions: readers ignore columns
/// they do not know, and a trace without an `acet` column means
/// ACET = WCET (`TaskTrace::acet` comes back empty).

#include <string>
#include <vector>

#include "easched/tasksys/task_set.hpp"

namespace easched {

/// A persisted workload: the task set plus, optionally, per-job actual
/// execution requirements. `acet` is either empty (no acet column — every
/// job consumes its full WCET budget) or exactly `tasks.size()` values with
/// `0 < acet[i] ≤ tasks[i].work`.
struct TaskTrace {
  TaskSet tasks;
  std::vector<double> acet;

  bool has_acet() const { return !acet.empty(); }
};

/// Serialize a task set to CSV text with header `release,deadline,work`.
std::string task_set_to_csv(const TaskSet& tasks);

/// Parse a task set from CSV text (columns may appear in any order; extra
/// columns — including `acet` — are ignored). Throws on malformed input.
TaskSet task_set_from_csv(const std::string& text);

/// Serialize a trace; emits the `acet` column only when present, so traces
/// without ACET data round-trip byte-identically through `TaskTrace`.
std::string task_trace_to_csv(const TaskTrace& trace);

/// Parse a trace. An absent `acet` column yields `acet.empty()`; a present
/// one is validated (`0 < acet ≤ work` per row). Throws on malformed input.
TaskTrace task_trace_from_csv(const std::string& text);

/// File-based convenience wrappers.
void write_task_set(const std::string& path, const TaskSet& tasks);
TaskSet read_task_set(const std::string& path);
void write_task_trace(const std::string& path, const TaskTrace& trace);
TaskTrace read_task_trace(const std::string& path);

}  // namespace easched
