#include "easched/tasksys/subintervals.hpp"

#include <algorithm>
#include <cmath>

#include "easched/common/contracts.hpp"
#include "easched/obs/trace.hpp"
#include "easched/parallel/exec.hpp"

namespace easched {

SubintervalDecomposition::SubintervalDecomposition(const TaskSet& tasks, double merge_tol)
    : SubintervalDecomposition(tasks, merge_tol, Exec::serial()) {}

SubintervalDecomposition::SubintervalDecomposition(const TaskSet& tasks, double merge_tol,
                                                   const Exec& exec) {
  EASCHED_EXPECTS_MSG(!tasks.empty(), "subinterval decomposition needs at least one task");
  EASCHED_EXPECTS(merge_tol >= 0.0);

  {
    obs::Span cut_span("kernel.subinterval_cut");
    cut_span.arg("tasks", static_cast<double>(tasks.size()));
    boundaries_.reserve(tasks.size() * 2);
    for (const Task& t : tasks) {
      boundaries_.push_back(t.release);
      boundaries_.push_back(t.deadline);
    }
    std::sort(boundaries_.begin(), boundaries_.end());
    // Merge boundaries closer than merge_tol: keep the first representative.
    std::vector<double> merged;
    merged.reserve(boundaries_.size());
    for (const double b : boundaries_) {
      if (merged.empty() || b - merged.back() > merge_tol) merged.push_back(b);
    }
    boundaries_ = std::move(merged);
    EASCHED_ASSERT(boundaries_.size() >= 2);
    cut_span.arg("subintervals", static_cast<double>(boundaries_.size() - 1));
  }

  // The O(n) overlap scan per subinterval is the O(n²) part of the
  // construction; each subinterval fills only its own slot.
  obs::Span overlap_span("kernel.overlap_scan");
  overlap_span.arg("subintervals", static_cast<double>(boundaries_.size() - 1));
  intervals_.resize(boundaries_.size() - 1);
  exec.loop(intervals_.size(), [&](std::size_t j) {
    Subinterval& si = intervals_[j];
    si.begin = boundaries_[j];
    si.end = boundaries_[j + 1];
    si.overlapping = tasks.live_during(si.begin, si.end);
  });
}

std::vector<std::size_t> SubintervalDecomposition::covering(const Task& task) const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < intervals_.size(); ++j) {
    if (intervals_[j].begin >= task.release && intervals_[j].end <= task.deadline) {
      out.push_back(j);
    }
  }
  return out;
}

std::size_t SubintervalDecomposition::index_at(double t) const {
  EASCHED_EXPECTS(t >= boundaries_.front() && t <= boundaries_.back());
  // boundaries_ is sorted; find the last boundary <= t.
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
  std::size_t idx = static_cast<std::size_t>(it - boundaries_.begin());
  if (idx > 0) --idx;
  if (idx >= intervals_.size()) idx = intervals_.size() - 1;  // right endpoint
  return idx;
}

std::size_t SubintervalDecomposition::max_overlap() const {
  std::size_t best = 0;
  for (const auto& si : intervals_) best = std::max(best, si.overlapping.size());
  return best;
}

}  // namespace easched
