#include "easched/tasksys/subintervals.hpp"

#include <algorithm>
#include <cmath>

#include "easched/common/contracts.hpp"
#include "easched/obs/trace.hpp"
#include "easched/parallel/exec.hpp"

namespace easched {

SubintervalDecomposition::SubintervalDecomposition(const TaskSet& tasks, double merge_tol)
    : SubintervalDecomposition(tasks, merge_tol, Exec::serial()) {}

SubintervalDecomposition::SubintervalDecomposition(const TaskSet& tasks, double merge_tol,
                                                   const Exec& exec) {
  EASCHED_EXPECTS_MSG(!tasks.empty(), "subinterval decomposition needs at least one task");
  EASCHED_EXPECTS(merge_tol >= 0.0);

  const std::size_t n = tasks.size();
  {
    obs::Span cut_span("kernel.subinterval_cut");
    cut_span.arg("tasks", static_cast<double>(n));
    boundaries_.reserve(n * 2);
    for (const Task& t : tasks) {
      boundaries_.push_back(t.release);
      boundaries_.push_back(t.deadline);
    }
    std::sort(boundaries_.begin(), boundaries_.end());
    // Merge boundaries closer than merge_tol: keep the first representative.
    std::vector<double> merged;
    merged.reserve(boundaries_.size());
    for (const double b : boundaries_) {
      if (merged.empty() || b - merged.back() > merge_tol) merged.push_back(b);
    }
    boundaries_ = std::move(merged);
    EASCHED_ASSERT(boundaries_.size() >= 2);
    cut_span.arg("subintervals", static_cast<double>(boundaries_.size() - 1));
  }

  build_from_boundaries(tasks, exec);
}

void SubintervalDecomposition::reserve(std::size_t tasks, std::size_t boundaries,
                                       std::size_t overlap_mass) {
  boundaries_.reserve(boundaries);
  intervals_.reserve(boundaries > 0 ? boundaries - 1 : 0);
  offsets_.reserve(boundaries);
  arena_.reserve(overlap_mass);
  ranges_.reserve(tasks);
}

void SubintervalDecomposition::assign(const TaskSet& tasks, std::span<const double> boundaries,
                                      const Exec& exec) {
  EASCHED_EXPECTS_MSG(!tasks.empty(), "subinterval decomposition needs at least one task");
  EASCHED_EXPECTS_MSG(boundaries.size() >= 2, "spliced boundary array needs two boundaries");
  boundaries_.assign(boundaries.begin(), boundaries.end());
  build_from_boundaries(tasks, exec);
}

void SubintervalDecomposition::build_from_boundaries(const TaskSet& tasks, const Exec& exec) {
  const std::size_t n = tasks.size();
  // Sweep: each task is live on the contiguous subinterval run between the
  // first boundary ≥ its release and the last boundary ≤ its deadline
  // (`release ≤ t_j` and `t_{j+1} ≤ deadline` are both monotone in j). Two
  // binary searches per task, then a counting pass lays every overlap set
  // into one exactly-sized CSR arena — O(n log n + P) in place of the old
  // O(n·N) per-subinterval membership scans.
  obs::Span sweep_span("kernel.sweep");
  sweep_span.arg("events", static_cast<double>(n * 2));
  const std::size_t subintervals = boundaries_.size() - 1;

  ranges_.resize(n);
  exec.loop(n, [&](std::size_t i) {
    const Task& t = tasks[i];
    const auto first_b =
        std::lower_bound(boundaries_.begin(), boundaries_.end(), t.release);
    const auto past_b = std::upper_bound(first_b, boundaries_.end(), t.deadline);
    // Subinterval j lives between boundaries j and j+1; the task covers
    // subintervals [first_b, past_b − 2] (needs two boundaries inside the
    // window). A window collapsed by merging covers none.
    const auto first = static_cast<std::size_t>(first_b - boundaries_.begin());
    const auto past = static_cast<std::size_t>(past_b - boundaries_.begin());
    ranges_[i] = past >= first + 2 ? SubRange{first, past - first - 1} : SubRange{first, 0};
  });

  // Counting pass: per-subinterval overlap counts via a difference array,
  // prefix-summed into CSR offsets. The arena is then sized exactly once —
  // zero reallocation on the hot path.
  offsets_.assign(subintervals + 1, 0);
  for (const SubRange& r : ranges_) {
    if (r.count == 0) continue;
    ++offsets_[r.first + 1];
    if (r.first + r.count + 1 <= subintervals) --offsets_[r.first + r.count + 1];
  }
  // First pass turns the difference array into per-subinterval counts
  // (offsets_[j+1] = n_j), second into exclusive prefix sums (CSR offsets).
  for (std::size_t j = 1; j <= subintervals; ++j) offsets_[j] += offsets_[j - 1];
  for (std::size_t j = 1; j <= subintervals; ++j) offsets_[j] += offsets_[j - 1];
  arena_.resize(offsets_[subintervals]);
  sweep_span.arg("overlap_mass", static_cast<double>(arena_.size()));

  // Fill: visiting tasks in ascending id keeps every subinterval's overlap
  // set ascending, matching the membership-scan order bit for bit.
  {
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const SubRange& r = ranges_[i];
      for (std::size_t j = r.first; j < r.first + r.count; ++j) {
        arena_[cursor[j]++] = static_cast<TaskId>(i);
      }
    }
  }

  intervals_.resize(subintervals);
  const std::span<const TaskId> arena(arena_);
  exec.loop(subintervals, [&](std::size_t j) {
    Subinterval& si = intervals_[j];
    si.begin = boundaries_[j];
    si.end = boundaries_[j + 1];
    si.overlapping = arena.subspan(offsets_[j], offsets_[j + 1] - offsets_[j]);
  });
}

std::vector<std::size_t> SubintervalDecomposition::covering(const Task& task) const {
  const SubRange r = covering_range(task);
  std::vector<std::size_t> out;
  out.reserve(r.count);
  for (std::size_t j = r.first; j < r.first + r.count; ++j) out.push_back(j);
  return out;
}

SubRange SubintervalDecomposition::covering_range(const Task& task) const {
  const auto first_b =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), task.release);
  const auto past_b = std::upper_bound(first_b, boundaries_.end(), task.deadline);
  const auto first = static_cast<std::size_t>(first_b - boundaries_.begin());
  const auto past = static_cast<std::size_t>(past_b - boundaries_.begin());
  return past >= first + 2 ? SubRange{first, past - first - 1} : SubRange{first, 0};
}

SubRange SubintervalDecomposition::range_of(TaskId i) const {
  EASCHED_EXPECTS(i >= 0 && static_cast<std::size_t>(i) < ranges_.size());
  return ranges_[static_cast<std::size_t>(i)];
}

std::size_t SubintervalDecomposition::index_at(double t) const {
  EASCHED_EXPECTS(t >= boundaries_.front() && t <= boundaries_.back());
  // boundaries_ is sorted; find the last boundary <= t.
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
  std::size_t idx = static_cast<std::size_t>(it - boundaries_.begin());
  if (idx > 0) --idx;
  if (idx >= intervals_.size()) idx = intervals_.size() - 1;  // right endpoint
  return idx;
}

std::size_t SubintervalDecomposition::max_overlap() const {
  std::size_t best = 0;
  for (const auto& si : intervals_) best = std::max(best, si.overlapping.size());
  return best;
}

}  // namespace easched
