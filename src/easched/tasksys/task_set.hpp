#pragma once

/// \file task_set.hpp
/// \brief An immutable, validated collection of aperiodic tasks.

#include <cstddef>
#include <span>
#include <vector>

#include "easched/tasksys/task.hpp"

namespace easched {

/// A validated task set `T = {τ_1, …, τ_n}`.
///
/// Construction enforces the model's well-formedness conditions
/// (`work > 0`, `deadline > release`, finite values); all schedulers may then
/// assume them. Tasks are identified by their index (`TaskId`) in the order
/// given at construction.
class TaskSet {
 public:
  TaskSet() = default;

  /// Validates and stores the tasks. Throws `ContractViolation` when any
  /// task is malformed.
  explicit TaskSet(std::vector<Task> tasks);

  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }

  const Task& operator[](std::size_t i) const { return tasks_[i]; }
  const Task& at(TaskId id) const;

  std::span<const Task> tasks() const { return tasks_; }

  auto begin() const { return tasks_.begin(); }
  auto end() const { return tasks_.end(); }

  /// \name Aggregate properties (Section III notation)
  /// @{
  /// Earliest release time `R̄` (0 for an empty set).
  double earliest_release() const { return earliest_release_; }
  /// Latest deadline `D̄` (0 for an empty set).
  double latest_deadline() const { return latest_deadline_; }
  /// Total execution requirement Σ C_i.
  double total_work() const { return total_work_; }
  /// Largest per-task intensity max_i C_i/(D_i−R_i).
  double max_intensity() const;
  /// @}

  /// Tasks *live* during `[t1, t2]`: release ≤ t1 and deadline ≥ t2.
  /// (The paper's "overlapping tasks" of a subinterval.)
  std::vector<TaskId> live_during(double t1, double t2) const;

 private:
  std::vector<Task> tasks_;
  double earliest_release_ = 0.0;
  double latest_deadline_ = 0.0;
  double total_work_ = 0.0;
};

}  // namespace easched
