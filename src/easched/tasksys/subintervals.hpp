#pragma once

/// \file subintervals.hpp
/// \brief Subinterval decomposition of the scheduling horizon (Section IV).
///
/// All distinct release times and deadlines `t_1 < t_2 < … < t_N` cut the
/// horizon `[R̄, D̄]` into `N−1` subintervals. Within a subinterval the set of
/// live ("overlapping") tasks is constant, which is what makes the paper's
/// per-subinterval rationing well defined.
///
/// Construction is a sweep over the sorted release/deadline events rather
/// than a per-subinterval membership scan: because an aperiodic task is live
/// on a *contiguous* run of subintervals (its window is one interval), two
/// binary searches per task yield its `[first_sub, last_sub]` range, and one
/// counting pass lays every overlap set into a single CSR-style arena
/// (per-subinterval offsets into one flat `TaskId` array). Total cost is
/// O(n log n + P) time and O(n + P) memory, where P = Σ_j n_j is the overlap
/// mass — versus O(n·N) for the scan — and the arena is sized exactly from
/// the sweep counts, so construction performs no reallocation.

#include <cstddef>
#include <span>
#include <vector>

#include "easched/tasksys/task_set.hpp"

namespace easched {

struct Exec;

/// One subinterval `[t_j, t_{j+1}]` together with its overlapping tasks.
/// `overlapping` views the decomposition's shared arena; it is valid exactly
/// as long as the owning `SubintervalDecomposition`.
struct Subinterval {
  double begin = 0.0;
  double end = 0.0;
  /// Tasks with `release ≤ begin` and `deadline ≥ end`, ascending TaskId.
  std::span<const TaskId> overlapping;

  double length() const { return end - begin; }

  /// Heavy ⇔ more overlapping tasks than cores (Section IV definition).
  bool heavy(int cores) const { return overlapping.size() > static_cast<std::size_t>(cores); }
};

/// The contiguous subinterval range a task is live on: indices
/// `[first, first + count)`. `count == 0` for a task whose window collapsed
/// under boundary merging.
struct SubRange {
  std::size_t first = 0;
  std::size_t count = 0;
};

/// The ordered decomposition for one task set.
///
/// Move-only: subintervals view the CSR arena, so a copy would alias the
/// source's storage.
class SubintervalDecomposition {
 public:
  /// Build from a non-empty task set. Nearly-equal boundary values (within
  /// `merge_tol`) are merged so that floating-point release/deadline noise
  /// does not create degenerate slivers.
  explicit SubintervalDecomposition(const TaskSet& tasks, double merge_tol = 1e-12);

  /// Same construction with the per-task range searches fanned out over
  /// `exec` (bit-identical to the serial constructor at any pool size).
  SubintervalDecomposition(const TaskSet& tasks, double merge_tol, const Exec& exec);

  SubintervalDecomposition(const SubintervalDecomposition&) = delete;
  SubintervalDecomposition& operator=(const SubintervalDecomposition&) = delete;
  SubintervalDecomposition(SubintervalDecomposition&&) = default;
  SubintervalDecomposition& operator=(SubintervalDecomposition&&) = default;

  /// Rebuild in place from an externally spliced boundary array. The caller
  /// guarantees `boundaries` is sorted, strictly increasing, already merged
  /// (no two values within the constructor's `merge_tol`), and brackets every
  /// task window — exactly what the constructor's sort+merge would produce.
  /// Every internal buffer is reused; when capacities suffice (see `reserve`)
  /// no storage is reallocated, in particular the CSR overlap arena keeps its
  /// data pointer. Bit-identical to constructing from scratch.
  void assign(const TaskSet& tasks, std::span<const double> boundaries, const Exec& exec);

  /// Pre-size the internal buffers for up to `tasks` tasks, `boundaries`
  /// boundary values and `overlap_mass` CSR arena slots, so later `assign`
  /// calls within those bounds perform zero allocation.
  void reserve(std::size_t tasks, std::size_t boundaries, std::size_t overlap_mass);

  std::size_t size() const { return intervals_.size(); }
  const Subinterval& operator[](std::size_t j) const { return intervals_[j]; }

  auto begin() const { return intervals_.begin(); }
  auto end() const { return intervals_.end(); }

  /// The sorted distinct boundary values `t_1 … t_N`.
  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Indices of subintervals fully inside `[task.release, task.deadline]`.
  /// O(log N + out) via binary search on the boundary array.
  std::vector<std::size_t> covering(const Task& task) const;

  /// The contiguous range `covering(task)` spans, without materializing it:
  /// O(log N). Works for any task, member or not.
  SubRange covering_range(const Task& task) const;

  /// The precomputed live range of member task `i` (equals
  /// `covering_range(tasks[i])`, O(1)).
  SubRange range_of(TaskId i) const;

  /// Index of the subinterval containing time `t` (`begin ≤ t < end`;
  /// the final subinterval also claims its right endpoint).
  std::size_t index_at(double t) const;

  /// Largest overlap count max_j n_j.
  std::size_t max_overlap() const;

  /// Total overlap mass P = Σ_j n_j (the CSR arena length).
  std::size_t overlap_mass() const { return arena_.size(); }

  /// The flat CSR arena: subinterval `j`'s overlap set occupies
  /// `[offsets()[j], offsets()[j+1])`, ascending TaskId.
  std::span<const TaskId> overlap_arena() const { return arena_; }
  const std::vector<std::size_t>& offsets() const { return offsets_; }

 private:
  /// Shared tail of construction: sweep + counting + fill + interval views,
  /// assuming `boundaries_` already holds the merged sorted boundary array.
  void build_from_boundaries(const TaskSet& tasks, const Exec& exec);

  std::vector<double> boundaries_;
  std::vector<Subinterval> intervals_;
  std::vector<std::size_t> offsets_;  ///< CSR offsets, size N(subintervals)+1
  std::vector<TaskId> arena_;         ///< flat overlap storage, length P
  std::vector<SubRange> ranges_;      ///< per-task live range
};

}  // namespace easched
