#pragma once

/// \file subintervals.hpp
/// \brief Subinterval decomposition of the scheduling horizon (Section IV).
///
/// All distinct release times and deadlines `t_1 < t_2 < … < t_N` cut the
/// horizon `[R̄, D̄]` into `N−1` subintervals. Within a subinterval the set of
/// live ("overlapping") tasks is constant, which is what makes the paper's
/// per-subinterval rationing well defined.

#include <cstddef>
#include <vector>

#include "easched/tasksys/task_set.hpp"

namespace easched {

struct Exec;

/// One subinterval `[t_j, t_{j+1}]` together with its overlapping tasks.
struct Subinterval {
  double begin = 0.0;
  double end = 0.0;
  /// Tasks with `release ≤ begin` and `deadline ≥ end`, ascending TaskId.
  std::vector<TaskId> overlapping;

  double length() const { return end - begin; }

  /// Heavy ⇔ more overlapping tasks than cores (Section IV definition).
  bool heavy(int cores) const { return overlapping.size() > static_cast<std::size_t>(cores); }
};

/// The ordered decomposition for one task set.
class SubintervalDecomposition {
 public:
  /// Build from a non-empty task set. Nearly-equal boundary values (within
  /// `merge_tol`) are merged so that floating-point release/deadline noise
  /// does not create degenerate slivers.
  explicit SubintervalDecomposition(const TaskSet& tasks, double merge_tol = 1e-12);

  /// Same construction with the per-subinterval overlap scans fanned out
  /// over `exec` (bit-identical to the serial constructor at any pool size).
  SubintervalDecomposition(const TaskSet& tasks, double merge_tol, const Exec& exec);

  std::size_t size() const { return intervals_.size(); }
  const Subinterval& operator[](std::size_t j) const { return intervals_[j]; }

  auto begin() const { return intervals_.begin(); }
  auto end() const { return intervals_.end(); }

  /// The sorted distinct boundary values `t_1 … t_N`.
  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Indices of subintervals fully inside `[task.release, task.deadline]`.
  std::vector<std::size_t> covering(const Task& task) const;

  /// Index of the subinterval containing time `t` (`begin ≤ t < end`;
  /// the final subinterval also claims its right endpoint).
  std::size_t index_at(double t) const;

  /// Largest overlap count max_j n_j.
  std::size_t max_overlap() const;

 private:
  std::vector<double> boundaries_;
  std::vector<Subinterval> intervals_;
};

}  // namespace easched
