#pragma once

/// \file exec.hpp
/// \brief Execution context threaded through the scheduling kernel.
///
/// `Exec` is how callers opt compute-heavy kernels (the subinterval
/// pipeline, the interior-point solver, per-subinterval packing) into
/// parallel execution: attach a `ThreadPool` and loops fan out over it, or
/// leave it empty and everything runs inline on the caller. It is a plain
/// pointer wrapper — copy it freely, it owns nothing.
///
/// **Determinism contract.** Every function accepting an `Exec` must return
/// bit-identical results for *any* context — serial, or a pool of any size.
/// The discipline that guarantees it (enforced by
/// `tests/parallel_determinism_test.cpp`):
///
///  * loop bodies write only pre-sized, index-disjoint output slots;
///  * all reductions (energy sums, piece concatenation, matrix assembly)
///    happen serially, in index order, after the parallel loop;
///  * no atomics-into-shared-accumulator shortcuts, ever — the reduction
///    order must not depend on scheduling.
///
/// Because `parallel_for` is caller-participating (see parallel_for.hpp),
/// an `Exec` pointing at the global pool is safe to use from code that is
/// itself running on a pool worker — nested loops degrade to inline
/// execution instead of deadlocking, and the process never runs more
/// compute lanes than one shared budget allows.

#include <cstddef>

#include "easched/parallel/parallel_for.hpp"

namespace easched {

/// Optional parallel execution context; default = serial.
struct Exec {
  ThreadPool* pool = nullptr;

  /// True when loops of `n` iterations would actually fan out.
  bool parallel(std::size_t n = 2) const {
    return pool != nullptr && pool->thread_count() > 1 && n >= 2;
  }

  static Exec serial() { return {}; }
  static Exec on(ThreadPool& p) { return Exec{&p}; }
  /// The process-wide shared worker budget.
  static Exec global() { return Exec{&ThreadPool::global()}; }

  /// Run `body(i)` for `i` in `[0, n)` under this context.
  template <typename Body>
  void loop(std::size_t n, Body&& body) const {
    if (!parallel(n)) {
      for (std::size_t i = 0; i < n; ++i) body(i);
    } else {
      parallel_for(0, n, body, *pool);
    }
  }
};

}  // namespace easched
