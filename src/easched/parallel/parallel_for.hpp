#pragma once

/// \file parallel_for.hpp
/// \brief Chunked parallel loop on top of `ThreadPool`.

#include <cstddef>
#include <future>
#include <vector>

#include "easched/common/contracts.hpp"
#include "easched/parallel/thread_pool.hpp"

namespace easched {

/// Run `body(i)` for every `i` in `[begin, end)` on `pool`, splitting the
/// range into contiguous chunks (roughly 4 per worker for load balance).
/// Blocks until all iterations finish; the first exception thrown by any
/// chunk is rethrown on the caller.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  ThreadPool& pool = ThreadPool::global()) {
  EASCHED_EXPECTS(begin <= end);
  const std::size_t count = end - begin;
  if (count == 0) return;
  const std::size_t workers = pool.thread_count();
  if (count == 1 || workers == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(count, workers * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : futures) f.get();
}

/// Map `fn(i)` over `[0, n)` in parallel, collecting results by index.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, ThreadPool& pool = ThreadPool::global())
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  parallel_for(
      0, n, [&](std::size_t i) { out[i] = fn(i); }, pool);
  return out;
}

}  // namespace easched
