#pragma once

/// \file parallel_for.hpp
/// \brief Chunked parallel loop on top of `ThreadPool`, safe to nest.
///
/// The caller *participates*: chunks live in a shared claim queue and the
/// calling thread drains it alongside the pool workers. Two consequences:
///
///  * **No deadlock under nesting.** A job already running on a pool worker
///    may call `parallel_for` on the same pool; if every worker is busy the
///    caller simply executes all chunks itself. This is what lets the
///    scheduling kernel, the Monte-Carlo harness, and `SchedulerService`
///    batch jobs share one machine-wide thread budget without reserving
///    threads for each other or oversubscribing the host.
///  * **No idle caller.** The submitting thread is always one of the
///    executors, so a pool of `k` workers yields up to `k + 1` lanes.
///
/// **Determinism contract.** Chunk layout and execution order are *not*
/// part of any function's observable behavior: bodies passed here must only
/// write pre-sized, disjoint output slots (element `i` of the loop touches
/// only slot `i`'s data), and every reduction over those slots must happen
/// serially, in index order, after the loop returns. Code that follows the
/// rule is bit-identical at any thread count — including fully serial —
/// which `tests/parallel_determinism_test.cpp` asserts for the whole
/// scheduling pipeline and the interior-point solver.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "easched/common/contracts.hpp"
#include "easched/parallel/thread_pool.hpp"

namespace easched {

namespace detail {

/// Shared lifetime anchor for one parallel_for invocation. Pool jobs hold it
/// by `shared_ptr`, so a straggler job that wakes up after the loop returned
/// still finds valid memory; it sees `next >= chunk_count` and exits without
/// ever touching the (by then dead) loop body.
struct ParallelForState {
  std::atomic<std::size_t> next{0};  ///< next unclaimed chunk
  std::size_t chunk_count = 0;
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;  ///< guarded by mutex
  std::exception_ptr error;  ///< first body exception; guarded by mutex
};

}  // namespace detail

/// Run `body(i)` for every `i` in `[begin, end)`, fanning chunks out over
/// `pool` while the caller helps execute them (see the file comment). Blocks
/// until all iterations finish; the first exception thrown by any chunk is
/// rethrown on the caller after the remaining chunks complete.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  ThreadPool& pool = ThreadPool::global()) {
  EASCHED_EXPECTS(begin <= end);
  const std::size_t count = end - begin;
  if (count == 0) return;
  const std::size_t workers = pool.thread_count();
  if (count == 1 || workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Roughly 4 chunks per lane for load balance. Results never depend on the
  // chunk layout (see the determinism contract above).
  const std::size_t chunks = std::min(count, (workers + 1) * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  const std::size_t chunk_count = (count + chunk_size - 1) / chunk_size;

  auto state = std::make_shared<detail::ParallelForState>();
  state->chunk_count = chunk_count;

  const auto run_chunks = [state, begin, end, chunk_size, &body] {
    for (;;) {
      const std::size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= state->chunk_count) return;
      const std::size_t lo = begin + c * chunk_size;
      const std::size_t hi = std::min(end, lo + chunk_size);
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      std::size_t finished;
      {
        std::lock_guard lock(state->mutex);
        finished = ++state->done;
      }
      if (finished == state->chunk_count) state->done_cv.notify_all();
    }
  };

  // One claimer job per worker (capped by the chunk count); each drains the
  // claim queue until empty. If the pool is saturated or stopping, the
  // caller's own pass below still completes every chunk.
  const std::size_t claimers = std::min(workers, chunk_count - 1);
  for (std::size_t c = 0; c < claimers; ++c) {
    try {
      pool.submit(run_chunks);
    } catch (...) {
      break;  // pool shutting down: caller-only execution below
    }
  }
  run_chunks();

  std::unique_lock lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->done == state->chunk_count; });
  if (state->error) std::rethrow_exception(state->error);
}

/// Map `fn(i)` over `[0, n)` in parallel, collecting results by index.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, ThreadPool& pool = ThreadPool::global())
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  parallel_for(
      0, n, [&](std::size_t i) { out[i] = fn(i); }, pool);
  return out;
}

}  // namespace easched
