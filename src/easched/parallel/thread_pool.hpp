#pragma once

/// \file thread_pool.hpp
/// \brief Fixed-size worker pool used by the Monte-Carlo experiment harness.
///
/// The experiments in the paper average 100 independent simulation runs per
/// parameter point; runs are embarrassingly parallel, so the harness fans
/// them out over this pool. The pool is a plain FIFO of type-erased jobs —
/// work items here are milliseconds-long scheduler invocations, so work
/// stealing would add complexity without measurable benefit.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "easched/faults/fault_injection.hpp"
#include "easched/obs/trace.hpp"

namespace easched {

/// A fixed-size thread pool.
///
/// **Exception contract** (load-bearing for `SchedulerService`, which runs
/// batch admission jobs on this pool): a job that throws never terminates a
/// worker or the process. The exception is captured into the shared state
/// of the future returned by `submit()` and rethrown from `future::get()`;
/// if the caller discards the future, the exception is silently dropped
/// with the shared state. Workers keep serving subsequent jobs either way.
class ThreadPool {
 public:
  /// Spawn `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a job; the returned future carries the job's result/exception
  /// (see the class-level exception contract).
  ///
  /// The fault hook runs *inside* the packaged task, so an injected delay
  /// or `InjectedFault` flows through the normal exception contract (into
  /// the job's future) and can never escape a worker. With no injector
  /// installed the hook is one atomic load.
  ///
  /// The submitter's tracing context (request id, current span) is captured
  /// here and re-installed on the worker for the job's duration, so spans a
  /// job opens carry the request id and nest under the submitting span even
  /// across the thread hop. Capture is two thread-local reads — free when
  /// tracing is off.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f), request = obs::current_request(),
         parent = obs::current_parent_span()]() mutable -> R {
          obs::RequestScope request_scope(request);
          obs::ParentScope parent_scope(parent);
          faults::on_job();
          return fn();
        });
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("submit() on a stopping ThreadPool");
      jobs_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// The process-wide default pool (lazily constructed, sized to the host).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace easched
