#pragma once

/// \file runtime_matrix.hpp
/// \brief Monte-Carlo evaluation of the online runtime policies.
///
/// The runtime's evaluation question is different from the planners': not
/// "how close to the offline optimum", but "given the same plan, how much
/// energy does reacting at decision points save over replaying the plan
/// verbatim when jobs finish early". The matrix sweeps
///
///   policy ∈ {static, cc, la, cc+dpm, la+dpm}
///     × ACET/WCET ratio ∈ {0.2, 0.4, 0.6, 0.8, 1.0}
///     × arrival model ∈ {uniform, bursty}
///
/// and reports each cell's realized energy normalized to the *static replay
/// at the same ratio* (so < 1 means the policy beats doing nothing), plus
/// reclaimed-slack, sleep-residency, and deadline-miss statistics. Every
/// cell charges awake-idle leakage (`idle_power`), otherwise neither
/// reclamation nor sleeping could ever pay — matching the leakage-aware
/// evaluation convention rather than the paper's free-idle abstraction.
///
/// Runs fan out over the thread pool with per-run deterministic seeds and
/// reduce in index order, so every table is bit-identical at any pool size.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "easched/common/stats.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/power/power_model.hpp"
#include "easched/runtime/runtime.hpp"
#include "easched/tasksys/arrivals.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {

/// One policy column of the matrix.
struct RuntimePolicySpec {
  std::string name;
  RuntimePolicy policy = RuntimePolicy::kStatic;
  bool dpm = false;
};

/// The default five-column policy set.
std::vector<RuntimePolicySpec> default_runtime_policies();

/// Matrix configuration.
struct RuntimeMatrixConfig {
  int cores = 4;
  std::vector<double> acet_ratios = {0.2, 0.4, 0.6, 0.8, 1.0};
  double acet_jitter = 0.1;
  std::vector<RuntimePolicySpec> policies = default_runtime_policies();

  /// Arrival model: the paper's uniform generator, or bursty clusters.
  bool bursty = false;
  WorkloadConfig workload;
  BurstyConfig bursts;

  /// Sleep-state parameters for the +dpm columns. `idle_power < 0` (the
  /// default) charges awake-idle at the power model's static power `p0`.
  DpmConfig dpm{/*idle_power=*/-1.0, /*sleep_power=*/0.0, /*wake_latency=*/0.5,
                /*wake_energy=*/0.1};

  double la_expectation = 0.0;  ///< look-ahead prior; 0 = adaptive
};

/// Statistics of one (policy, ratio) cell.
struct RuntimeCellStats {
  std::string policy;
  double acet_ratio = 0.0;
  RunningStats energy_vs_static;  ///< realized total / static replay total
  RunningStats realized_energy;   ///< absolute realized total
  RunningStats reclaimed;         ///< reclaimed slice time per run
  RunningStats sleep_time;        ///< sleep residency per run
  RunningStats misses;            ///< 1 when a run missed any deadline
};

/// Full matrix output, cells in (policy-major, ratio-minor) order.
struct RuntimeMatrixResult {
  std::vector<RuntimeCellStats> cells;
  std::size_t runs = 0;

  const RuntimeCellStats& cell(std::string_view policy, double ratio) const;
};

/// Run the matrix: `runs` seeded workloads, each planned once (F2) and then
/// executed under every (policy, ratio) cell. `label` determines all seeds.
RuntimeMatrixResult run_runtime_matrix(std::string_view label, const RuntimeMatrixConfig& config,
                                       const PowerModel& power, std::size_t runs,
                                       ThreadPool& pool = ThreadPool::global());

}  // namespace easched
