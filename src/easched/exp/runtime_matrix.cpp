#include "easched/exp/runtime_matrix.hpp"

#include <utility>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/sched/pipeline.hpp"

namespace easched {

std::vector<RuntimePolicySpec> default_runtime_policies() {
  return {
      {"static", RuntimePolicy::kStatic, false},
      {"cc", RuntimePolicy::kCycleConserving, false},
      {"la", RuntimePolicy::kLookAhead, false},
      {"cc+dpm", RuntimePolicy::kCycleConserving, true},
      {"la+dpm", RuntimePolicy::kLookAhead, true},
  };
}

const RuntimeCellStats& RuntimeMatrixResult::cell(std::string_view policy, double ratio) const {
  for (const RuntimeCellStats& c : cells) {
    if (c.policy == policy && almost_equal(c.acet_ratio, ratio)) return c;
  }
  EASCHED_EXPECTS_MSG(false, "unknown runtime matrix cell");
  return cells.front();  // unreachable
}

namespace {

/// Everything one Monte-Carlo run contributes, laid out per cell
/// (policy-major, ratio-minor) so the reduction is a flat index-order loop.
struct RunContribution {
  std::vector<double> energy;
  std::vector<double> vs_static;
  std::vector<double> reclaimed;
  std::vector<double> sleep_time;
  std::vector<double> missed;
};

}  // namespace

RuntimeMatrixResult run_runtime_matrix(std::string_view label, const RuntimeMatrixConfig& config,
                                       const PowerModel& power, std::size_t runs,
                                       ThreadPool& pool) {
  EASCHED_EXPECTS(runs > 0);
  EASCHED_EXPECTS(!config.policies.empty());
  EASCHED_EXPECTS(!config.acet_ratios.empty());

  DpmConfig dpm = config.dpm;
  if (dpm.idle_power < 0.0) dpm.idle_power = power.static_power();

  const std::size_t cell_count = config.policies.size() * config.acet_ratios.size();
  std::vector<RunContribution> contributions(runs);

  Exec::on(pool).loop(runs, [&](std::size_t run) {
    Rng rng(Rng::seed_of(label, run));
    const TaskSet tasks = config.bursty ? generate_bursty_workload(config.bursts, rng)
                                        : generate_workload(config.workload, rng);
    const Schedule plan = run_pipeline(tasks, config.cores, power).der.final_schedule;

    RunContribution& out = contributions[run];
    out.energy.assign(cell_count, 0.0);
    out.vs_static.assign(cell_count, 0.0);
    out.reclaimed.assign(cell_count, 0.0);
    out.sleep_time.assign(cell_count, 0.0);
    out.missed.assign(cell_count, 0.0);

    for (std::size_t ri = 0; ri < config.acet_ratios.size(); ++ri) {
      RuntimeOptions base;
      base.acet.ratio = config.acet_ratios[ri];
      base.acet.jitter = std::min(config.acet_jitter, std::max(0.0, 1.0 - base.acet.ratio));
      base.acet.seed = Rng::seed_of(label, run, 1);
      base.dpm_config = dpm;  // idle leakage applies to every cell
      base.la_expectation = config.la_expectation;

      // The normalization baseline: replay the plan verbatim at this ratio.
      RuntimeOptions static_opt = base;
      static_opt.policy = RuntimePolicy::kStatic;
      static_opt.dpm = false;
      const double static_energy =
          run_runtime(tasks, plan, power, static_opt).energy.total();

      for (std::size_t pi = 0; pi < config.policies.size(); ++pi) {
        const RuntimePolicySpec& spec = config.policies[pi];
        RuntimeOptions opt = base;
        opt.policy = spec.policy;
        opt.dpm = spec.dpm;
        const RuntimeReport report = run_runtime(tasks, plan, power, opt);

        const std::size_t cell = pi * config.acet_ratios.size() + ri;
        out.energy[cell] = report.energy.total();
        out.vs_static[cell] =
            static_energy > 0.0 ? report.energy.total() / static_energy : 1.0;
        out.reclaimed[cell] = report.reclaimed_total;
        out.sleep_time[cell] = report.sleep_time_total;
        out.missed[cell] = report.missed_deadlines() > 0 ? 1.0 : 0.0;
      }
    }
  });

  RuntimeMatrixResult result;
  result.runs = runs;
  result.cells.reserve(cell_count);
  for (const RuntimePolicySpec& spec : config.policies) {
    for (const double ratio : config.acet_ratios) {
      RuntimeCellStats cell;
      cell.policy = spec.name;
      cell.acet_ratio = ratio;
      result.cells.push_back(std::move(cell));
    }
  }
  // Serial, index-order reduction: bit-identical at any pool size.
  for (const RunContribution& run : contributions) {
    for (std::size_t cell = 0; cell < cell_count; ++cell) {
      result.cells[cell].realized_energy.add(run.energy[cell]);
      result.cells[cell].energy_vs_static.add(run.vs_static[cell]);
      result.cells[cell].reclaimed.add(run.reclaimed[cell]);
      result.cells[cell].sleep_time.add(run.sleep_time[cell]);
      result.cells[cell].misses.add(run.missed[cell]);
    }
  }
  return result;
}

}  // namespace easched
