#pragma once

/// \file plot.hpp
/// \brief Gnuplot artifact emission for NEC sweeps.
///
/// The bench binaries print paper-shaped ASCII tables; for figures, this
/// writes a `<name>.dat` column file plus a self-contained `<name>.gp`
/// script so `gnuplot name.gp` regenerates the corresponding paper figure
/// (PNG). Kept dependency-free: artifacts are plain text.

#include <string>
#include <vector>

namespace easched {

/// One plottable sweep: x values and one y-vector per named series.
struct PlotSeries {
  std::string name;
  std::vector<double> values;
};

/// Write `<dir>/<name>.dat` and `<dir>/<name>.gp`.
///
/// `xs.size()` must match every series' length; at least one series.
/// Returns the path of the script. Throws `std::runtime_error` when the
/// files cannot be written.
std::string write_gnuplot_artifacts(const std::string& dir, const std::string& name,
                                    const std::string& title, const std::string& x_label,
                                    const std::string& y_label, const std::vector<double>& xs,
                                    const std::vector<PlotSeries>& series);

}  // namespace easched
