#pragma once

/// \file sharding.hpp
/// \brief Deterministic sharded fan-out for Monte-Carlo experiment drivers.
///
/// The bench drivers (fig*/table*, perf_schedulers) repeat independent runs
/// with per-run seeds `Rng::seed_of(label, run)`. Sharding groups runs into
/// fixed contiguous blocks so each pool job amortizes its dispatch overhead
/// over several runs, while results land in run-order slots — the fold over
/// them is the same serial fold as before, so accumulated statistics are
/// bit-identical to the unsharded (and fully serial) harness at any pool
/// size. The shard layout is a pure function of (total, shard_size), never
/// of the pool or of timing.

#include <cstddef>
#include <vector>

#include "easched/common/contracts.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/parallel/thread_pool.hpp"

namespace easched {

/// Fixed-size partition of `total` runs into contiguous shards.
struct ShardPlan {
  std::size_t total = 0;
  std::size_t shard_size = 8;

  struct Range {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  std::size_t shard_count() const {
    return total == 0 ? 0 : (total + shard_size - 1) / shard_size;
  }

  Range shard_range(std::size_t shard) const {
    EASCHED_EXPECTS(shard < shard_count());
    const std::size_t begin = shard * shard_size;
    const std::size_t end = begin + shard_size < total ? begin + shard_size : total;
    return {begin, end};
  }

  /// Plan for `total` runs: `EASCHED_SHARD_SIZE` env override, else 8
  /// runs per shard (clamped to ≥ 1).
  static ShardPlan for_runs(std::size_t total);
};

/// Evaluate `body(run)` for every run in `[0, plan.total)`, sharded over
/// `pool`; returns the results in run order. Runs inside one shard execute
/// serially in ascending order; shards fill disjoint slots. Each run must
/// derive all randomness from its own index (e.g. `Rng::seed_of(label,
/// run)`) — then the output vector is identical however the shards land on
/// threads.
template <typename Body>
auto run_sharded(const ShardPlan& plan, Body&& body, ThreadPool& pool = ThreadPool::global())
    -> std::vector<decltype(body(std::size_t{0}))> {
  using Result = decltype(body(std::size_t{0}));
  std::vector<Result> out(plan.total);
  parallel_for(
      0, plan.shard_count(),
      [&](std::size_t shard) {
        const ShardPlan::Range range = plan.shard_range(shard);
        for (std::size_t run = range.begin; run < range.end; ++run) out[run] = body(run);
      },
      pool);
  return out;
}

}  // namespace easched
