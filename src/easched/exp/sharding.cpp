#include "easched/exp/sharding.hpp"

#include <cstdlib>

namespace easched {

ShardPlan ShardPlan::for_runs(std::size_t total) {
  ShardPlan plan;
  plan.total = total;
  if (const char* env = std::getenv("EASCHED_SHARD_SIZE")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) plan.shard_size = static_cast<std::size_t>(parsed);
  }
  return plan;
}

}  // namespace easched
