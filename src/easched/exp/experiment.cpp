#include "easched/exp/experiment.hpp"

#include <cstdlib>
#include <string>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/exp/sharding.hpp"
#include "easched/sched/discrete_adapter.hpp"
#include "easched/sched/pipeline.hpp"

namespace easched {

InstanceEnergies evaluate_instance(const TaskSet& tasks, int cores, const PowerModel& power,
                                   const SolverOptions& solver) {
  InstanceEnergies result;
  const PipelineResult pipeline = run_pipeline(tasks, cores, power);
  result.ideal = pipeline.ideal_energy;
  result.i1 = pipeline.even.intermediate_energy;
  result.f1 = pipeline.even.final_energy;
  result.i2 = pipeline.der.intermediate_energy;
  result.f2 = pipeline.der.final_energy;

  const SolverResult opt = solve_optimal_allocation(tasks, cores, power, solver);
  result.optimal = opt.energy;
  result.solver_converged = opt.converged;
  return result;
}

std::vector<double> NecAccumulators::means() const {
  return {ideal.mean(), i1.mean(), f1.mean(), i2.mean(), f2.mean()};
}

NecAccumulators monte_carlo_nec(std::string_view label, const WorkloadConfig& config, int cores,
                                const PowerModel& power, std::size_t runs,
                                const SolverOptions& solver, ThreadPool& pool) {
  EASCHED_EXPECTS(runs > 0);

  const auto per_run = run_sharded(
      ShardPlan::for_runs(runs),
      [&](std::size_t run) {
        Rng rng(Rng::seed_of(label, run));
        const TaskSet tasks = generate_workload(config, rng);
        return evaluate_instance(tasks, cores, power, solver);
      },
      pool);

  NecAccumulators acc;
  acc.runs = runs;
  for (const InstanceEnergies& e : per_run) {
    EASCHED_ASSERT(e.optimal > 0.0);
    acc.ideal.add(e.ideal / e.optimal);
    acc.i1.add(e.i1 / e.optimal);
    acc.f1.add(e.f1 / e.optimal);
    acc.i2.add(e.i2 / e.optimal);
    acc.f2.add(e.f2 / e.optimal);
    if (!e.solver_converged) ++acc.solver_failures;
  }
  return acc;
}

DiscreteAccumulators monte_carlo_discrete(std::string_view label, const WorkloadConfig& config,
                                          int cores, const DiscreteLevels& levels,
                                          std::size_t runs, const SolverOptions& solver,
                                          ThreadPool& pool) {
  EASCHED_EXPECTS(runs > 0);
  const PowerFit fit = fit_power_model(levels);
  const PowerModel power = fit.model();

  struct RunOutcome {
    double optimal = 0.0;
    DiscreteRunReport ideal, i1, f1, i2, f2;
  };

  const auto per_run = run_sharded(
      ShardPlan::for_runs(runs),
      [&](std::size_t run) {
        Rng rng(Rng::seed_of(label, run));
        const TaskSet tasks = generate_workload(config, rng);
        const SubintervalDecomposition subs(tasks);
        const IdealCase ideal(tasks, power);

        RunOutcome out;
        const MethodResult even =
            schedule_with_method(tasks, subs, cores, power, ideal, AllocationMethod::kEven);
        const MethodResult der =
            schedule_with_method(tasks, subs, cores, power, ideal, AllocationMethod::kDer);
        out.ideal = quantize_ideal(tasks, ideal, levels);
        out.i1 = quantize_intermediate(tasks, even, levels);
        out.f1 = quantize_final(tasks, even, levels);
        out.i2 = quantize_intermediate(tasks, der, levels);
        out.f2 = quantize_final(tasks, der, levels);
        out.optimal = solve_optimal_allocation(tasks, subs, cores, power, solver).energy;
        return out;
      },
      pool);

  DiscreteAccumulators acc;
  acc.runs = runs;
  for (const RunOutcome& out : per_run) {
    EASCHED_ASSERT(out.optimal > 0.0);
    acc.nec_ideal.add(out.ideal.energy / out.optimal);
    acc.nec_i1.add(out.i1.energy / out.optimal);
    acc.nec_f1.add(out.f1.energy / out.optimal);
    acc.nec_i2.add(out.i2.energy / out.optimal);
    acc.nec_f2.add(out.f2.energy / out.optimal);
    acc.miss_ideal.add(out.ideal.any_miss() ? 1.0 : 0.0);
    acc.miss_i1.add(out.i1.any_miss() ? 1.0 : 0.0);
    acc.miss_f1.add(out.f1.any_miss() ? 1.0 : 0.0);
    acc.miss_i2.add(out.i2.any_miss() ? 1.0 : 0.0);
    acc.miss_f2.add(out.f2.any_miss() ? 1.0 : 0.0);
  }
  return acc;
}

std::size_t default_runs() {
  if (const char* env = std::getenv("REPRO_RUNS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  return 100;
}

}  // namespace easched
