#pragma once

/// \file experiment.hpp
/// \brief Monte-Carlo experiment harness shared by the bench binaries.
///
/// Reproduces the paper's evaluation protocol (Section VI): draw a workload,
/// run the ideal case, all four subinterval schedulers, and the convex
/// optimum, and report each scheduler's Normalized Energy Consumption
/// NEC = E / E^{OPT}. Runs are embarrassingly parallel and fan out over the
/// process thread pool with per-run deterministic seeds, so every table in
/// EXPERIMENTS.md can be regenerated bit-for-bit.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "easched/common/stats.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/power/curve_fit.hpp"
#include "easched/power/discrete_levels.hpp"
#include "easched/power/power_model.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {

/// Absolute energies of every scheduler on one instance.
struct InstanceEnergies {
  double optimal = 0.0;  ///< E^{OPT} (convex solver)
  double ideal = 0.0;    ///< E^O (unlimited cores)
  double i1 = 0.0;       ///< evenly allocating, intermediate
  double f1 = 0.0;       ///< evenly allocating, final
  double i2 = 0.0;       ///< DER-based, intermediate
  double f2 = 0.0;       ///< DER-based, final
  bool solver_converged = false;
};

/// Run every scheduler + the optimum on one task set.
InstanceEnergies evaluate_instance(const TaskSet& tasks, int cores, const PowerModel& power,
                                   const SolverOptions& solver = {});

/// NEC accumulators across Monte-Carlo runs (paper's five curves).
struct NecAccumulators {
  RunningStats ideal;  ///< "NEC of IdL" = E^O / E^{OPT}
  RunningStats i1;
  RunningStats f1;
  RunningStats i2;
  RunningStats f2;
  std::size_t runs = 0;
  std::size_t solver_failures = 0;

  /// Means in the paper's plotting order (IdL, I1, F1, I2, F2).
  std::vector<double> means() const;
};

/// Monte-Carlo sweep: `runs` instances of `config`, NEC statistics.
/// `label` determines the seed of every run (`Rng::seed_of(label, run)`).
NecAccumulators monte_carlo_nec(std::string_view label, const WorkloadConfig& config, int cores,
                                const PowerModel& power, std::size_t runs,
                                const SolverOptions& solver = {},
                                ThreadPool& pool = ThreadPool::global());

/// Discrete-ladder (Section VI-C) per-run result: NEC against the continuous
/// fitted optimum plus deadline-miss indicators.
struct DiscreteAccumulators {
  RunningStats nec_ideal;
  RunningStats nec_i1;
  RunningStats nec_f1;
  RunningStats nec_i2;
  RunningStats nec_f2;
  /// Fraction of runs where the scheduler missed at least one deadline.
  RunningStats miss_ideal;
  RunningStats miss_i1;
  RunningStats miss_f1;
  RunningStats miss_i2;
  RunningStats miss_f2;
  std::size_t runs = 0;
};

/// Monte-Carlo sweep on a discrete frequency ladder. The pipeline plans with
/// the fitted continuous model of `levels`, then every scheduler is re-cost
/// on the ladder; the NEC denominator is the continuous optimum.
DiscreteAccumulators monte_carlo_discrete(std::string_view label, const WorkloadConfig& config,
                                          int cores, const DiscreteLevels& levels,
                                          std::size_t runs, const SolverOptions& solver = {},
                                          ThreadPool& pool = ThreadPool::global());

/// Number of Monte-Carlo runs per experiment point: the paper's 100, or the
/// `REPRO_RUNS` environment override (clamped to ≥ 1).
std::size_t default_runs();

}  // namespace easched
