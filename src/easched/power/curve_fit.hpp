#pragma once

/// \file curve_fit.hpp
/// \brief Fit the continuous model `p(f) = γ·f^α + p0` to a discrete ladder.
///
/// Section VI-C derives a continuous model from the Intel XScale table by
/// curve fitting (the paper reports `p(f) = 3.855e-6·f^2.867 + 63.58`). For a
/// fixed exponent `α` the problem is linear least squares in `(γ, p0)`; we
/// wrap that in a coarse grid plus golden-section refinement over `α`, with
/// the physical constraints `γ > 0`, `p0 ≥ 0` enforced by constrained
/// refitting on the boundary.

#include "easched/power/discrete_levels.hpp"
#include "easched/power/power_model.hpp"

namespace easched {

/// Result of a power-model fit.
struct PowerFit {
  double alpha = 0.0;
  double gamma = 0.0;
  double static_power = 0.0;
  /// Sum of squared residuals over the table's operating points.
  double sse = 0.0;
  /// Root-mean-square residual, in the table's power unit.
  double rms = 0.0;

  PowerModel model() const { return PowerModel(alpha, static_power, gamma); }
};

/// Options controlling the α search.
struct CurveFitOptions {
  double alpha_min = 2.0;
  double alpha_max = 4.0;
  /// Coarse grid resolution before golden-section refinement.
  int grid_points = 81;
  /// Absolute α tolerance of the refinement.
  double alpha_tol = 1e-6;
};

/// Fit `(γ, α, p0)` to the ladder. Requires at least 3 operating points.
PowerFit fit_power_model(const DiscreteLevels& levels, const CurveFitOptions& options = {});

/// The fixed-α inner solve (exposed for testing): least squares over (γ, p0)
/// with `γ > 0`, `p0 ≥ 0`.
PowerFit fit_power_model_fixed_alpha(const DiscreteLevels& levels, double alpha);

}  // namespace easched
