// power_model.hpp is header-only; this translation unit exists so the build
// emits its inline definitions once for debuggers and keeps the module listed
// in the library sources.
#include "easched/power/power_model.hpp"
