#include "easched/power/discrete_levels.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"

namespace easched {

DiscreteLevels::DiscreteLevels(std::vector<FrequencyLevel> levels) : levels_(std::move(levels)) {
  EASCHED_EXPECTS_MSG(!levels_.empty(), "frequency ladder must be non-empty");
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    EASCHED_EXPECTS(levels_[k].frequency > 0.0);
    EASCHED_EXPECTS(levels_[k].power >= 0.0);
    if (k > 0) {
      EASCHED_EXPECTS_MSG(levels_[k].frequency > levels_[k - 1].frequency,
                          "frequencies must be strictly increasing");
      EASCHED_EXPECTS_MSG(levels_[k].power >= levels_[k - 1].power,
                          "power must be non-decreasing in frequency");
    }
  }
}

std::optional<FrequencyLevel> DiscreteLevels::quantize_up(double f) const {
  EASCHED_EXPECTS(f >= 0.0);
  for (const FrequencyLevel& level : levels_) {
    if (geq_tol(level.frequency, f, 1e-9 * level.frequency)) return level;
  }
  return std::nullopt;
}

FrequencyLevel DiscreteLevels::quantize_up_saturating(double f) const {
  if (auto level = quantize_up(f)) return *level;
  return levels_.back();
}

double DiscreteLevels::power_at(double level_frequency) const {
  for (const FrequencyLevel& level : levels_) {
    if (almost_equal(level.frequency, level_frequency, 1e-9, 1e-9)) return level.power;
  }
  EASCHED_EXPECTS_MSG(false, "frequency is not an operating point of this ladder");
  return 0.0;  // unreachable
}

DiscreteLevels DiscreteLevels::intel_xscale() {
  return DiscreteLevels({{150.0, 80.0},
                         {400.0, 170.0},
                         {600.0, 400.0},
                         {800.0, 900.0},
                         {1000.0, 1600.0}});
}

}  // namespace easched
