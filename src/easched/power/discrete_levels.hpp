#pragma once

/// \file discrete_levels.hpp
/// \brief Discrete frequency/power operating points of a real processor.
///
/// Practical cores expose a finite ladder of (frequency, power) pairs
/// (P-states). Section VI-C evaluates the schedulers on the Intel XScale
/// ladder (Table III): continuous frequency choices must be rounded *up* to
/// the next level so deadlines are still met, and a required frequency above
/// the top level means a deadline miss.

#include <optional>
#include <vector>

namespace easched {

/// One operating point.
struct FrequencyLevel {
  double frequency = 0.0;  ///< e.g. MHz
  double power = 0.0;      ///< active power at this level, e.g. mW

  friend bool operator==(const FrequencyLevel&, const FrequencyLevel&) = default;
};

/// A validated, ascending ladder of operating points.
class DiscreteLevels {
 public:
  /// Levels must be non-empty with strictly increasing frequency and
  /// non-decreasing power.
  explicit DiscreteLevels(std::vector<FrequencyLevel> levels);

  std::size_t size() const { return levels_.size(); }
  const FrequencyLevel& operator[](std::size_t k) const { return levels_[k]; }
  const std::vector<FrequencyLevel>& levels() const { return levels_; }

  double min_frequency() const { return levels_.front().frequency; }
  double max_frequency() const { return levels_.back().frequency; }

  /// Smallest level with `frequency ≥ f`; `nullopt` when `f` exceeds the top
  /// level (the request is infeasible on this hardware).
  std::optional<FrequencyLevel> quantize_up(double f) const;

  /// Like `quantize_up`, but saturates at the top level instead of failing.
  /// Callers must separately account for the resulting deadline risk.
  FrequencyLevel quantize_up_saturating(double f) const;

  /// Power drawn at a frequency that must be one of the ladder's levels.
  double power_at(double level_frequency) const;

  /// The Intel XScale ladder from paper Table III:
  /// f (MHz): 150, 400, 600, 800, 1000 — p (mW): 80, 170, 400, 900, 1600.
  static DiscreteLevels intel_xscale();

 private:
  std::vector<FrequencyLevel> levels_;
};

}  // namespace easched
