#include "easched/power/curve_fit.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "easched/common/contracts.hpp"

namespace easched {

namespace {

double sse_of(const DiscreteLevels& levels, double alpha, double gamma, double p0) {
  double sse = 0.0;
  for (const auto& [f, p] : levels.levels()) {
    const double r = gamma * std::pow(f, alpha) + p0 - p;
    sse += r * r;
  }
  return sse;
}

}  // namespace

PowerFit fit_power_model_fixed_alpha(const DiscreteLevels& levels, double alpha) {
  EASCHED_EXPECTS(levels.size() >= 3);
  EASCHED_EXPECTS(alpha >= 2.0);

  // Least squares for p ≈ γ·x + p0 with x = f^α. Normal equations:
  //   [Σx²  Σx ] [γ ]   [Σxp]
  //   [Σx   n  ] [p0] = [Σp ]
  double sxx = 0.0, sx = 0.0, sxp = 0.0, sp = 0.0;
  const double n = static_cast<double>(levels.size());
  for (const auto& [f, p] : levels.levels()) {
    const double x = std::pow(f, alpha);
    sxx += x * x;
    sx += x;
    sxp += x * p;
    sp += p;
  }
  const double det = sxx * n - sx * sx;
  EASCHED_ASSERT(det > 0.0);
  double gamma = (sxp * n - sx * sp) / det;
  double p0 = (sxx * sp - sx * sxp) / det;

  if (p0 < 0.0) {
    // Constrained refit on the p0 = 0 boundary.
    p0 = 0.0;
    gamma = sxp / sxx;
  }
  if (gamma <= 0.0) {
    // Degenerate (power not increasing with f^α); flat fit.
    gamma = std::numeric_limits<double>::min();
    p0 = sp / n;
  }

  PowerFit fit;
  fit.alpha = alpha;
  fit.gamma = gamma;
  fit.static_power = p0;
  fit.sse = sse_of(levels, alpha, gamma, p0);
  fit.rms = std::sqrt(fit.sse / n);
  return fit;
}

PowerFit fit_power_model(const DiscreteLevels& levels, const CurveFitOptions& options) {
  EASCHED_EXPECTS(options.alpha_min >= 2.0);
  EASCHED_EXPECTS(options.alpha_max > options.alpha_min);
  EASCHED_EXPECTS(options.grid_points >= 3);

  // Coarse grid to bracket the best α.
  double best_alpha = options.alpha_min;
  double best_sse = std::numeric_limits<double>::infinity();
  const double step =
      (options.alpha_max - options.alpha_min) / static_cast<double>(options.grid_points - 1);
  for (int i = 0; i < options.grid_points; ++i) {
    const double a = options.alpha_min + step * i;
    const double sse = fit_power_model_fixed_alpha(levels, a).sse;
    if (sse < best_sse) {
      best_sse = sse;
      best_alpha = a;
    }
  }

  // Golden-section refinement on [best−step, best+step] ∩ [min, max].
  double lo = std::max(options.alpha_min, best_alpha - step);
  double hi = std::min(options.alpha_max, best_alpha + step);
  constexpr double kInvPhi = 0.6180339887498949;
  double x1 = hi - kInvPhi * (hi - lo);
  double x2 = lo + kInvPhi * (hi - lo);
  double f1 = fit_power_model_fixed_alpha(levels, x1).sse;
  double f2 = fit_power_model_fixed_alpha(levels, x2).sse;
  while (hi - lo > options.alpha_tol) {
    if (f1 <= f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kInvPhi * (hi - lo);
      f1 = fit_power_model_fixed_alpha(levels, x1).sse;
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kInvPhi * (hi - lo);
      f2 = fit_power_model_fixed_alpha(levels, x2).sse;
    }
  }
  return fit_power_model_fixed_alpha(levels, 0.5 * (lo + hi));
}

}  // namespace easched
