#pragma once

/// \file power_model.hpp
/// \brief The continuous DVFS power model `p(f) = γ·f^α + p0` (Section III-B).
///
/// A core in active mode at frequency `f` consumes `γ·f^α` dynamic power plus
/// `p0` static power; an idle core sleeps at zero power. The paper uses
/// `γ = 1` for the abstract experiments and a fitted `(γ, α, p0)` for the
/// Intel XScale evaluation.

#include <cmath>

#include "easched/common/contracts.hpp"

namespace easched {

/// Immutable continuous power model.
class PowerModel {
 public:
  /// `alpha ≥ 2` per the model; `gamma > 0`; `p0 ≥ 0`.
  PowerModel(double alpha, double static_power, double gamma = 1.0)
      : alpha_(alpha), p0_(static_power), gamma_(gamma) {
    EASCHED_EXPECTS_MSG(alpha >= 2.0, "model requires alpha >= 2");
    EASCHED_EXPECTS(gamma > 0.0);
    EASCHED_EXPECTS(static_power >= 0.0);
  }

  double alpha() const { return alpha_; }
  double static_power() const { return p0_; }
  double gamma() const { return gamma_; }

  /// Active power at frequency `f > 0`: `γ·f^α + p0`.
  double power(double f) const {
    EASCHED_EXPECTS(f > 0.0);
    return gamma_ * std::pow(f, alpha_) + p0_;
  }

  /// Energy to run for duration `t` at frequency `f` (work done: `f·t`).
  double energy_for_duration(double t, double f) const {
    EASCHED_EXPECTS(t >= 0.0);
    return power(f) * t;
  }

  /// Energy to complete `work` units at constant frequency `f`:
  /// `C·(γ·f^{α−1} + p0/f)` — equation (17) generalized with γ.
  double energy_for_work(double work, double f) const {
    EASCHED_EXPECTS(work >= 0.0);
    EASCHED_EXPECTS(f > 0.0);
    return work * (gamma_ * std::pow(f, alpha_ - 1.0) + p0_ / f);
  }

  /// The *critical frequency* `f* = (p0 / ((α−1)·γ))^{1/α}`: the unconstrained
  /// minimizer of energy-per-unit-work. Running below `f*` wastes static
  /// energy; this is the clamp in equation (19). Zero when `p0 = 0`.
  double critical_frequency() const {
    if (p0_ == 0.0) return 0.0;
    return std::pow(p0_ / ((alpha_ - 1.0) * gamma_), 1.0 / alpha_);
  }

  /// The energy-optimal frequency for a task allowed at most `available_time`
  /// of execution: `max(f*, work / available_time)` — equation (19)/(23).
  double optimal_frequency(double work, double available_time) const {
    EASCHED_EXPECTS(work > 0.0);
    EASCHED_EXPECTS(available_time > 0.0);
    return std::max(critical_frequency(), work / available_time);
  }

  friend bool operator==(const PowerModel&, const PowerModel&) = default;

 private:
  double alpha_;
  double p0_;
  double gamma_;
};

}  // namespace easched
