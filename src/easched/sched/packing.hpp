#pragma once

/// \file packing.hpp
/// \brief Collision-free packing within one subinterval (Algorithm 1).
///
/// Given per-task execution times inside a subinterval `[t_j, t_{j+1}]`
/// (each ≤ the subinterval length, summing to ≤ m·length), Algorithm 1 lays
/// tasks out core by core, wrapping a task that crosses the subinterval end
/// onto the next core — McNaughton's classical wrap-around rule. The two
/// pieces of a wrapped task never overlap in time because its total time is
/// at most the subinterval length.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "easched/sched/schedule.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task.hpp"

namespace easched {

struct Exec;
struct IntermediatePiece;

/// One packing request: run `task` for `time` inside the subinterval at
/// frequency `frequency`.
struct PackItem {
  TaskId task = 0;
  double time = 0.0;
  double frequency = 0.0;
};

/// Pack `items` into `[begin, end]` on `cores` cores (Algorithm 1).
///
/// Preconditions (checked): every `item.time ∈ [0, end−begin]` and
/// `Σ item.time ≤ cores · (end−begin)`, both up to a small relative
/// tolerance to absorb float noise from upstream allocators; violations
/// within tolerance are clamped. Items with zero time produce no segments.
/// Appends the produced segments to `schedule`.
void pack_subinterval(double begin, double end, int cores, std::span<const PackItem> items,
                      Schedule& schedule);

/// Pack every subinterval independently (`items[j]` into `subs[j]`) and
/// concatenate the per-subinterval segment runs in subinterval order.
///
/// Subintervals are disjoint in time, so their wrap-around packings never
/// interact; under a parallel `exec` each subinterval packs into its own
/// fragment and the ordered concatenation reproduces the exact segment
/// sequence the serial per-`j` loop emits — bit-identical at any pool size.
/// Empty item lists produce no segments. The result is not coalesced.
Schedule pack_subintervals(const SubintervalDecomposition& subs, int cores,
                           const std::vector<std::vector<PackItem>>& items, const Exec& exec);

/// CSR overload: subinterval `j`'s items are `items[offsets[j], offsets[j+1])`
/// in one flat buffer (`offsets.size() == subs.size() + 1`,
/// `offsets.back() == items.size()`). Emits the same segment sequence as the
/// vector-of-vectors overload but packs into one exactly-bounded segment
/// arena — no per-subinterval vector growth and a single ordered gather at
/// the end. This is the path the kernel's O(P)-piece materialization takes.
Schedule pack_subintervals(const SubintervalDecomposition& subs, int cores,
                           const std::vector<PackItem>& items,
                           const std::vector<std::size_t>& offsets, const Exec& exec);

/// Fused pack + coalesce over the CSR layout: returns exactly what
/// `pack_subintervals(subs, cores, items, offsets, exec)` followed by
/// `Schedule::coalesce(time_tol, freq_tol)` would, but never materializes
/// the ungrouped concatenated segment list. Segments go straight from the
/// packing arena into (task, core) groups by a stable counting scatter that
/// visits them in concatenation order, then merge in place — one segment
/// buffer end to end instead of three. At n = 10000 the intermediate lists
/// run to tens of millions of segments, so skipping two gigabyte-scale
/// buffers is the difference between an allocation-bound and a compute-bound
/// kernel.
Schedule pack_subintervals_coalesced(const SubintervalDecomposition& subs, int cores,
                                     std::span<const PackItem> items,
                                     const std::vector<std::size_t>& offsets, const Exec& exec,
                                     double time_tol = 1e-9, double freq_tol = 1e-9);

/// Same, fed by the kernel's intermediate pieces directly — no conversion
/// copy to `PackItem`. Pieces with non-positive time emit no segments,
/// matching the filtered conversion this replaces; the per-subinterval
/// slices of `pieces` must already be subinterval-major (`offsets[j]` ..
/// `offsets[j+1]` all carry `subinterval == j`).
Schedule pack_subintervals_coalesced(const SubintervalDecomposition& subs, int cores,
                                     std::span<const IntermediatePiece> pieces,
                                     const std::vector<std::size_t>& offsets, const Exec& exec,
                                     double time_tol = 1e-9, double freq_tol = 1e-9);

/// Generator-fed fused pack + coalesce: `source(j)` yields subinterval `j`'s
/// items on demand, so a caller that derives items from an existing
/// structure (the F2 refinement reads them straight off the availability
/// matrix) never materializes the O(P) flat item list at all. `source` may
/// be called more than once per `j` (the serial strategy packs in two
/// passes; the parallel one sizes its arena first) and must return the same
/// content each time; under a parallel exec it is called concurrently for
/// different `j`, so return thread-local or otherwise per-caller storage.
/// `max_task` must bound every yielded task id — the (task, core) group
/// table is allocated from it eagerly, so ids must be dense.
Schedule pack_subintervals_coalesced(
    const SubintervalDecomposition& subs, int cores,
    const std::function<std::span<const PackItem>(std::size_t)>& source, TaskId max_task,
    const Exec& exec, double time_tol = 1e-9, double freq_tol = 1e-9);

}  // namespace easched
