#pragma once

/// \file packing.hpp
/// \brief Collision-free packing within one subinterval (Algorithm 1).
///
/// Given per-task execution times inside a subinterval `[t_j, t_{j+1}]`
/// (each ≤ the subinterval length, summing to ≤ m·length), Algorithm 1 lays
/// tasks out core by core, wrapping a task that crosses the subinterval end
/// onto the next core — McNaughton's classical wrap-around rule. The two
/// pieces of a wrapped task never overlap in time because its total time is
/// at most the subinterval length.

#include <vector>

#include "easched/sched/schedule.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task.hpp"

namespace easched {

struct Exec;

/// One packing request: run `task` for `time` inside the subinterval at
/// frequency `frequency`.
struct PackItem {
  TaskId task = 0;
  double time = 0.0;
  double frequency = 0.0;
};

/// Pack `items` into `[begin, end]` on `cores` cores (Algorithm 1).
///
/// Preconditions (checked): every `item.time ∈ [0, end−begin]` and
/// `Σ item.time ≤ cores · (end−begin)`, both up to a small relative
/// tolerance to absorb float noise from upstream allocators; violations
/// within tolerance are clamped. Items with zero time produce no segments.
/// Appends the produced segments to `schedule`.
void pack_subinterval(double begin, double end, int cores, const std::vector<PackItem>& items,
                      Schedule& schedule);

/// Pack every subinterval independently (`items[j]` into `subs[j]`) and
/// concatenate the per-subinterval segment runs in subinterval order.
///
/// Subintervals are disjoint in time, so their wrap-around packings never
/// interact; under a parallel `exec` each subinterval packs into its own
/// fragment and the ordered concatenation reproduces the exact segment
/// sequence the serial per-`j` loop emits — bit-identical at any pool size.
/// Empty item lists produce no segments. The result is not coalesced.
Schedule pack_subintervals(const SubintervalDecomposition& subs, int cores,
                           const std::vector<std::vector<PackItem>>& items, const Exec& exec);

}  // namespace easched
