#include "easched/sched/allocation.hpp"

#include <algorithm>
#include <numeric>

#include "easched/common/contracts.hpp"
#include "easched/parallel/exec.hpp"

namespace easched {

const char* to_string(AllocationMethod method) {
  switch (method) {
    case AllocationMethod::kEven:
      return "even";
    case AllocationMethod::kDer:
      return "der";
  }
  return "?";
}

AllocationMatrix::AllocationMatrix(std::size_t tasks, std::size_t subintervals)
    : tasks_(tasks), subintervals_(subintervals), data_(tasks * subintervals, 0.0) {}

double AllocationMatrix::operator()(std::size_t task, std::size_t subinterval) const {
  EASCHED_EXPECTS(task < tasks_ && subinterval < subintervals_);
  return data_[task * subintervals_ + subinterval];
}

void AllocationMatrix::set(std::size_t task, std::size_t subinterval, double value) {
  EASCHED_EXPECTS(task < tasks_ && subinterval < subintervals_);
  EASCHED_EXPECTS(value >= 0.0);
  data_[task * subintervals_ + subinterval] = value;
}

double AllocationMatrix::row_sum(std::size_t task) const {
  EASCHED_EXPECTS(task < tasks_);
  const double* row = data_.data() + task * subintervals_;
  return std::accumulate(row, row + subintervals_, 0.0);
}

double AllocationMatrix::column_sum(std::size_t subinterval) const {
  EASCHED_EXPECTS(subinterval < subintervals_);
  double sum = 0.0;
  for (std::size_t i = 0; i < tasks_; ++i) sum += data_[i * subintervals_ + subinterval];
  return sum;
}

std::vector<double> even_ration(std::size_t task_count, int cores, double length) {
  EASCHED_EXPECTS(task_count > 0);
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(length > 0.0);
  const double share =
      std::min(length, static_cast<double>(cores) * length / static_cast<double>(task_count));
  return std::vector<double>(task_count, share);
}

std::vector<double> der_ration(const std::vector<double>& ders, int cores, double length) {
  EASCHED_EXPECTS(!ders.empty());
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(length > 0.0);

  double total_der = 0.0;
  for (const double d : ders) {
    EASCHED_EXPECTS(d >= 0.0);
    total_der += d;
  }
  if (total_der <= 0.0) {
    // Every overlapping task finished before this subinterval in the ideal
    // schedule (large static power shrinks U^O). The paper leaves this case
    // open; the even split keeps every task schedulable.
    return even_ration(ders.size(), cores, length);
  }

  // Algorithm 2: greatest DER first; each task requests its proportional
  // share of the *remaining* capacity, capped at the subinterval length.
  std::vector<std::size_t> order(ders.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return ders[a] > ders[b]; });

  std::vector<double> alloc(ders.size(), 0.0);
  double remaining_capacity = static_cast<double>(cores) * length;
  double remaining_der = total_der;
  for (const std::size_t i : order) {
    if (remaining_der <= 0.0 || remaining_capacity <= 0.0) break;
    const double share = remaining_capacity * ders[i] / remaining_der;
    const double granted = std::min(length, share);
    alloc[i] = granted;
    remaining_capacity -= granted;
    remaining_der -= ders[i];
  }
  return alloc;
}

AllocationMatrix allocate_available_time(const TaskSet& tasks,
                                         const SubintervalDecomposition& subintervals, int cores,
                                         const IdealCase& ideal, AllocationMethod method) {
  return allocate_available_time(tasks, subintervals, cores, ideal, method, Exec::serial());
}

AllocationMatrix allocate_available_time(const TaskSet& tasks,
                                         const SubintervalDecomposition& subintervals, int cores,
                                         const IdealCase& ideal, AllocationMethod method,
                                         const Exec& exec) {
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(ideal.size() == tasks.size());

  AllocationMatrix avail(tasks.size(), subintervals.size());
  exec.loop(subintervals.size(), [&](std::size_t j) {
    const Subinterval& si = subintervals[j];
    if (si.overlapping.empty()) return;

    if (!si.heavy(cores)) {
      // Observation 2: each overlapping task may occupy a whole core.
      for (const TaskId i : si.overlapping) {
        avail.set(static_cast<std::size_t>(i), j, si.length());
      }
      return;
    }

    std::vector<double> ration;
    if (method == AllocationMethod::kEven) {
      ration = even_ration(si.overlapping.size(), cores, si.length());
    } else {
      std::vector<double> ders;
      ders.reserve(si.overlapping.size());
      for (const TaskId i : si.overlapping) {
        // DER (equation (24)): ideal execution time in this subinterval,
        // scaled by the ideal frequency.
        ders.push_back(ideal.execution_time_in(i, si.begin, si.end) * ideal.frequency(i));
      }
      ration = der_ration(ders, cores, si.length());
    }
    for (std::size_t k = 0; k < si.overlapping.size(); ++k) {
      avail.set(static_cast<std::size_t>(si.overlapping[k]), j, ration[k]);
    }
  });
  return avail;
}

}  // namespace easched
