#include "easched/sched/allocation.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>

#include "easched/common/contracts.hpp"
#include "easched/common/radix.hpp"
#include "easched/parallel/exec.hpp"

namespace easched {

const char* to_string(AllocationMethod method) {
  switch (method) {
    case AllocationMethod::kEven:
      return "even";
    case AllocationMethod::kDer:
      return "der";
  }
  return "?";
}

Availability::Availability(const TaskSet& tasks, const SubintervalDecomposition& subs)
    : subintervals_(subs.size()) {
  EASCHED_EXPECTS(subs.size() > 0);
  spans_.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    spans_.push_back(subs.range_of(static_cast<TaskId>(i)));
  }
  offsets_.reserve(spans_.size() + 1);
  offsets_.push_back(0);
  for (const SubRange& r : spans_) offsets_.push_back(offsets_.back() + r.count);
  values_.assign(offsets_.back(), 0.0);
  row_sum_.assign(spans_.size(), 0.0);
  col_sum_.assign(subintervals_, 0.0);
}

Availability::Availability(std::vector<SubRange> spans, std::size_t subintervals)
    : spans_(std::move(spans)), subintervals_(subintervals) {
  offsets_.reserve(spans_.size() + 1);
  offsets_.push_back(0);
  for (const SubRange& r : spans_) {
    EASCHED_EXPECTS(r.first + r.count <= subintervals_);
    offsets_.push_back(offsets_.back() + r.count);
  }
  values_.assign(offsets_.back(), 0.0);
  row_sum_.assign(spans_.size(), 0.0);
  col_sum_.assign(subintervals_, 0.0);
}

void Availability::rebuild_sums(const SubintervalDecomposition& subs, const Exec& exec) {
  EASCHED_EXPECTS(subs.size() == subintervals_);
  exec.loop(subintervals_, [&](std::size_t j) {
    // Ascending-member order — the order `set_in_column` accumulates column
    // j during a bulk fill (and x + 0.0 == x exactly for x ≥ +0.0, so
    // structural zeros cannot perturb the fold).
    double sum = 0.0;
    for (const TaskId i : subs[j].overlapping) sum += (*this)(static_cast<std::size_t>(i), j);
    col_sum_[j] = sum;
  });
  finalize_row_sums(exec);
}

void Availability::finalize_row_sums(const Exec& exec) {
  exec.loop(spans_.size(), [&](std::size_t i) {
    // Ascending-subinterval order — the same order a dense accumulate over
    // the full row visits the nonzeros, so the sum is bit-identical to it.
    double sum = 0.0;
    for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) sum += values_[k];
    row_sum_[i] = sum;
  });
}

std::vector<double> even_ration(std::size_t task_count, int cores, double length) {
  EASCHED_EXPECTS(task_count > 0);
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(length > 0.0);
  const double share =
      std::min(length, static_cast<double>(cores) * length / static_cast<double>(task_count));
  return std::vector<double>(task_count, share);
}

namespace {

/// Reusable per-call storage for the rationing loop: the allocator runs it
/// once per heavy subinterval (tens of thousands of times per plan), so the
/// vectors live in thread-local scratch instead of reallocating each call.
struct RationScratch {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order;  ///< (key, index), sorted
  std::vector<std::pair<std::uint64_t, std::uint32_t>> swap;   ///< radix ping-pong buffer
  std::vector<double> ration;
};

/// `der_ration` into caller-provided storage; `scratch.ration` holds the
/// result on return.
void der_ration_into(const std::vector<double>& ders, int cores, double length,
                     RationScratch& scratch) {
  EASCHED_EXPECTS(!ders.empty());
  EASCHED_EXPECTS(ders.size() <= std::size_t{UINT32_MAX});  // index fits the radix key pair
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(length > 0.0);

  double total_der = 0.0;
  for (const double d : ders) {
    EASCHED_EXPECTS(d >= 0.0);
    total_der += d;
  }
  if (total_der <= 0.0) {
    // Every overlapping task finished before this subinterval in the ideal
    // schedule (large static power shrinks U^O). The paper leaves this case
    // open; the even split keeps every task schedulable.
    const double share =
        std::min(length, static_cast<double>(cores) * length / static_cast<double>(ders.size()));
    scratch.ration.assign(ders.size(), share);
    return;
  }

  // Algorithm 2: greatest DER first; each task requests its proportional
  // share of the *remaining* capacity, capped at the subinterval length.
  // Descending-DER order with ascending index as tie-break, via a stable
  // radix sort on the bit-flipped IEEE key: positive doubles order like
  // their bit patterns, so ascending `~bits` is descending value, and two
  // positive doubles are equal iff their bits are — the order matches a
  // stable descending-value sort of the indices exactly. Zero-DER tasks are
  // left out entirely: they would sort last, receive
  // `min(length, capacity·0/der) = 0`, and change neither remainder — their
  // rations are already the zeros `assign` wrote. At n = 10000 roughly a
  // quarter of all overlap pairs carry zero DER (the task's ideal stretch
  // ended before the subinterval), so the sort shrinks accordingly.
  scratch.order.clear();
  for (std::size_t i = 0; i < ders.size(); ++i) {
    if (ders[i] > 0.0) {
      scratch.order.push_back(
          {~std::bit_cast<std::uint64_t>(ders[i]), static_cast<std::uint32_t>(i)});
    }
  }
  radix_sort_keys(scratch.order, scratch.swap);

  scratch.ration.assign(ders.size(), 0.0);
  double remaining_capacity = static_cast<double>(cores) * length;
  double remaining_der = total_der;
  for (const auto& [key, i] : scratch.order) {
    if (remaining_der <= 0.0 || remaining_capacity <= 0.0) break;
    const double der = std::bit_cast<double>(~key);  // exact round-trip
    const double share = remaining_capacity * der / remaining_der;
    const double granted = std::min(length, share);
    scratch.ration[i] = granted;
    remaining_capacity -= granted;
    remaining_der -= der;
  }
}

}  // namespace

std::vector<double> der_ration(const std::vector<double>& ders, int cores, double length) {
  RationScratch scratch;
  der_ration_into(ders, cores, length, scratch);
  return std::move(scratch.ration);
}

Availability allocate_available_time(const TaskSet& tasks,
                                     const SubintervalDecomposition& subintervals, int cores,
                                     const IdealCase& ideal, AllocationMethod method) {
  return allocate_available_time(tasks, subintervals, cores, ideal, method, Exec::serial());
}

Availability allocate_available_time(const TaskSet& tasks,
                                     const SubintervalDecomposition& subintervals, int cores,
                                     const IdealCase& ideal, AllocationMethod method,
                                     const Exec& exec) {
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(ideal.size() == tasks.size());

  Availability avail(tasks, subintervals);
  exec.loop(subintervals.size(), [&](std::size_t j) {
    const Subinterval& si = subintervals[j];
    if (si.overlapping.empty()) return;

    if (!si.heavy(cores)) {
      // Observation 2: each overlapping task may occupy a whole core.
      for (const TaskId i : si.overlapping) {
        avail.set_in_column(static_cast<std::size_t>(i), j, si.length());
      }
      return;
    }

    // Thread-local scratch: each worker reuses one set of rationing buffers
    // across its subintervals instead of allocating fresh vectors per heavy
    // subinterval. The computed values are independent of the buffers'
    // history, so the result stays bit-identical at any pool size.
    thread_local RationScratch scratch;
    thread_local std::vector<double> ders;
    if (method == AllocationMethod::kEven) {
      const double share =
          std::min(si.length(), static_cast<double>(cores) * si.length() /
                                    static_cast<double>(si.overlapping.size()));
      scratch.ration.assign(si.overlapping.size(), share);
    } else {
      ders.clear();
      for (const TaskId i : si.overlapping) {
        // DER (equation (24)): ideal execution time in this subinterval,
        // scaled by the ideal frequency.
        ders.push_back(ideal.execution_time_in(i, si.begin, si.end) * ideal.frequency(i));
      }
      der_ration_into(ders, cores, si.length(), scratch);
    }
    for (std::size_t k = 0; k < si.overlapping.size(); ++k) {
      avail.set_in_column(static_cast<std::size_t>(si.overlapping[k]), j, scratch.ration[k]);
    }
  });
  avail.finalize_row_sums(exec);
  return avail;
}

}  // namespace easched
