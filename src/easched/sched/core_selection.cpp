#include "easched/sched/core_selection.hpp"

#include "easched/common/contracts.hpp"

namespace easched {

CoreSelectionResult select_core_count(const TaskSet& tasks, int max_cores,
                                      const PowerModel& power, AllocationMethod method) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(max_cores >= 1);

  const SubintervalDecomposition subs(tasks);
  const IdealCase ideal(tasks, power);

  CoreSelectionResult result;
  for (int m = 1; m <= max_cores; ++m) {
    MethodResult candidate = schedule_with_method(tasks, subs, m, power, ideal, method);
    result.candidates.push_back({m, candidate.final_energy});
    if (result.best_cores == 0 || candidate.final_energy < result.best_energy) {
      result.best_cores = m;
      result.best_energy = candidate.final_energy;
      result.best = std::move(candidate);
    }
  }
  return result;
}

}  // namespace easched
