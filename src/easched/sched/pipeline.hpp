#pragma once

/// \file pipeline.hpp
/// \brief The paper's end-to-end subinterval schedulers: I1, F1, I2, F2.
///
/// Pipeline per allocation method (Section V-B/V-C):
///  1. compute the ideal unlimited-core case `S^O`;
///  2. allocate available execution times per subinterval (even or DER);
///  3. *intermediate* schedule (`S^{I}`): keep `S^O`'s per-subinterval work,
///     raising the frequency wherever the ration is shorter than the ideal
///     execution time;
///  4. *final* schedule (`S^{F}`): re-optimize one frequency per task against
///     its total available time `A_i` (equations (22)–(23)), then materialize
///     a collision-free `Schedule` via Algorithm 1.

#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/sched/allocation.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

struct Exec;

/// One constant-frequency chunk of an intermediate schedule: task `task`
/// executes `time` seconds at `frequency` inside subinterval `subinterval`.
/// Kept explicitly so the discrete-frequency adapter can re-quantize chunks.
struct IntermediatePiece {
  TaskId task = 0;
  std::size_t subinterval = 0;
  double time = 0.0;
  double frequency = 0.0;

  double work() const { return time * frequency; }
};

/// Full output of one allocation method's pipeline.
struct MethodResult {
  AllocationMethod method = AllocationMethod::kEven;

  /// Available execution time per (task, subinterval), row-compressed to
  /// each task's live subinterval range.
  Availability availability;
  /// `A_i = Σ_j avail(i, j)`.
  std::vector<double> total_available;

  /// Intermediate scheduling (S^{I1} / S^{I2}).
  std::vector<IntermediatePiece> intermediate_pieces;
  double intermediate_energy = 0.0;
  Schedule intermediate_schedule;

  /// Final scheduling (S^{F1} / S^{F2}).
  std::vector<double> final_frequency;  ///< `f_i = max(f*, C_i/A_i)`.
  double final_energy = 0.0;            ///< analytic Σ C_i(γf^{α−1}+p0/f).
  Schedule final_schedule;              ///< materialized, collision-free.
};

/// Results for both methods plus the shared ideal case.
struct PipelineResult {
  double ideal_energy = 0.0;  ///< `E^O` (unlimited-core lower reference).
  MethodResult even;          ///< I1 / F1
  MethodResult der;           ///< I2 / F2
};

/// Run one allocation method end to end.
MethodResult schedule_with_method(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const PowerModel& power, const IdealCase& ideal,
                                  AllocationMethod method);

/// Same pipeline with the per-subinterval stages (allocation, intermediate
/// pieces, packing) and the per-task F2 re-optimization fanned out over
/// `exec`. Bit-identical to the serial overload at any pool size (the
/// determinism contract of `parallel/exec.hpp`).
MethodResult schedule_with_method(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const PowerModel& power, const IdealCase& ideal,
                                  AllocationMethod method, const Exec& exec);

/// Run both methods, sharing the decomposition and ideal case.
PipelineResult run_pipeline(const TaskSet& tasks, int cores, const PowerModel& power);

/// Parallel overload: decomposition overlap scans and both methods run
/// under `exec`; output is bit-identical to the serial overload.
PipelineResult run_pipeline(const TaskSet& tasks, int cores, const PowerModel& power,
                            const Exec& exec);

/// Rebuild `result`'s final schedule with each subinterval's pieces ordered
/// by frequency (stable, ties by task id) before Algorithm-1 packing.
///
/// The paper notes the execution order within a subinterval "can be
/// arbitrary" and should be chosen "to avoid unnecessary preemptions and
/// migrations"; grouping equal frequencies makes abutting segments coalesce
/// and cuts per-core DVFS switches without changing any task's energy
/// (measured in `ablation_transitions`). Same energy, same validity — only
/// the layout differs.
Schedule materialize_final_sorted(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const MethodResult& result);

/// Parallel overload of `materialize_final_sorted` (same output, any pool).
Schedule materialize_final_sorted(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const MethodResult& result, const Exec& exec);

}  // namespace easched
