#pragma once

/// \file transitions.hpp
/// \brief DVFS transition-overhead accounting.
///
/// The paper's model (like most of the literature it builds on) treats
/// frequency switches as free. Real voltage regulators charge both time and
/// energy per transition. This module counts the switches a schedule
/// actually performs — per core, a switch whenever consecutive busy segments
/// differ in frequency, plus wake-ups from sleep — and re-costs schedules
/// under a simple per-switch penalty, enabling the `ablation_transitions`
/// bench: the final schedulers (one frequency per task) switch far less
/// than the intermediate ones (a frequency per task per subinterval).

#include <cstddef>

#include "easched/power/power_model.hpp"
#include "easched/sched/schedule.hpp"

namespace easched {

/// A per-event overhead model.
struct TransitionModel {
  /// Energy per frequency change on a running core.
  double switch_energy = 0.0;
  /// Energy per sleep→active wake-up (entering sleep is free, matching the
  /// paper's zero-power sleep assumption).
  double wakeup_energy = 0.0;
  /// Frequencies closer than this are "the same operating point".
  double frequency_tolerance = 1e-9;
};

/// Switch statistics of a schedule.
struct TransitionStats {
  /// Frequency changes between consecutive busy segments on the same core
  /// (no intervening idle gap).
  std::size_t frequency_switches = 0;
  /// Sleep→active transitions (including each core's first activation).
  std::size_t wakeups = 0;
  /// Idle gaps skipped (context for the wake-up count).
  std::size_t idle_gaps = 0;
};

/// Count the switches `schedule` performs. Gaps longer than `idle_tol`
/// separate busy runs (the core sleeps between them).
TransitionStats count_transitions(const Schedule& schedule, double idle_tol = 1e-9,
                                  double frequency_tolerance = 1e-9);

/// Total energy including overheads:
/// `schedule.energy(power) + switches·switch_energy + wakeups·wakeup_energy`.
double energy_with_transitions(const Schedule& schedule, const PowerModel& power,
                               const TransitionModel& model);

}  // namespace easched
