#pragma once

/// \file admission.hpp
/// \brief Admission control: accept/reject a new task against a committed
///        set, with an energy quote.
///
/// The runtime-facing question behind the paper's offline formulation: a
/// set of tasks is already committed; a new request `(R, D, C)` arrives.
/// Can the platform still meet *every* deadline (exact max-flow test under
/// the frequency ceiling), and what marginal energy does acceptance cost
/// (F2 plan before vs after)? The energy quote uses the same lightweight
/// pipeline the paper argues is cheap enough for exactly this kind of
/// on-line decision making.

#include <string>

#include "easched/common/math.hpp"
#include "easched/power/power_model.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Outcome of an admission test.
struct AdmissionDecision {
  bool admitted = false;
  /// Why not (empty when admitted).
  std::string rejection_reason;
  /// F2 energy of the committed set alone.
  double energy_before = 0.0;
  /// F2 energy including the candidate (0 when rejected).
  double energy_after = 0.0;
  /// The quote: energy_after − energy_before (0 when rejected).
  double marginal_energy = 0.0;
};

/// Decide whether `candidate` can join `committed` on `cores` cores.
///
/// `f_max` is the platform's frequency ceiling; pass `kInf` for the ideal
/// continuous platform (admission then only fails on malformed candidates,
/// since unbounded frequency can always catch up). The committed set is
/// assumed feasible at `f_max`.
AdmissionDecision admit_task(const TaskSet& committed, const Task& candidate, int cores,
                             const PowerModel& power, double f_max = kInf);

}  // namespace easched
