#include "easched/sched/transitions.hpp"

#include <cmath>

#include "easched/common/contracts.hpp"

namespace easched {

TransitionStats count_transitions(const Schedule& schedule, double idle_tol,
                                  double frequency_tolerance) {
  EASCHED_EXPECTS(idle_tol >= 0.0);
  EASCHED_EXPECTS(frequency_tolerance >= 0.0);

  TransitionStats stats;
  for (CoreId core = 0; core < std::max(schedule.core_count(), 1); ++core) {
    const auto segments = schedule.segments_on_core(core);
    bool sleeping = true;
    double last_end = 0.0;
    double last_frequency = 0.0;
    for (const Segment& seg : segments) {
      const bool gap = sleeping || seg.start - last_end > idle_tol;
      if (gap) {
        ++stats.wakeups;
        if (!sleeping) ++stats.idle_gaps;
      } else if (std::abs(seg.frequency - last_frequency) >
                 frequency_tolerance * std::max(1.0, seg.frequency)) {
        ++stats.frequency_switches;
      }
      sleeping = false;
      last_end = seg.end;
      last_frequency = seg.frequency;
    }
  }
  return stats;
}

double energy_with_transitions(const Schedule& schedule, const PowerModel& power,
                               const TransitionModel& model) {
  EASCHED_EXPECTS(model.switch_energy >= 0.0);
  EASCHED_EXPECTS(model.wakeup_energy >= 0.0);
  const TransitionStats stats =
      count_transitions(schedule, 1e-9, model.frequency_tolerance);
  return schedule.energy(power) +
         static_cast<double>(stats.frequency_switches) * model.switch_energy +
         static_cast<double>(stats.wakeups) * model.wakeup_energy;
}

}  // namespace easched
