#pragma once

/// \file feasibility.hpp
/// \brief Exact schedulability analysis under a frequency ceiling.
///
/// On real hardware frequencies top out at `f_max`, and Section VI-C shows
/// the heuristics can then miss deadlines. This module answers the prior
/// question exactly: *can any migrating preemptive schedule meet all
/// deadlines at maximum frequency `f_max` on `m` cores?*
///
/// Test: convert work to execution time `C_i / f_max` and run a maximum flow
/// on the bipartite network
///
///   source --C_i/f_max--> task_i --len_j--> subinterval_j --m·len_j--> sink
///
/// (task→subinterval arcs exist only where `[t_j, t_{j+1}] ⊆ [R_i, D_i]`;
/// their `len_j` caps encode that a task cannot run on two cores at once).
/// The instance is feasible iff the max flow saturates the total demand —
/// the classic Horn-style argument the paper's related work ([2], [4])
/// builds on. A binary search over `f_max` then yields the minimal feasible
/// ceiling, and simple necessary conditions give fast counterexamples.

#include <string>
#include <vector>

#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Result of a feasibility query at a fixed frequency ceiling.
struct FeasibilityReport {
  bool feasible = false;
  /// Total demanded execution time Σ C_i / f_max.
  double demand = 0.0;
  /// Execution time actually routable (max flow); < demand when infeasible.
  double routable = 0.0;
  /// Violated necessary conditions, human-readable (may be empty even for
  /// infeasible instances — the flow test is the exact one).
  std::vector<std::string> violated_conditions;
};

/// Exact feasibility at ceiling `f_max` on `cores` cores.
FeasibilityReport check_feasibility(const TaskSet& tasks, int cores, double f_max);

/// Reusing a precomputed decomposition.
FeasibilityReport check_feasibility(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                    int cores, double f_max);

/// The smallest frequency ceiling that admits a feasible schedule, found by
/// binary search between the trivial lower bound
/// `max(max_i intensity_i, max-window demand density / m)` and a doubling
/// upper bound. Accurate to `rel_tol` relative tolerance.
double minimal_feasible_frequency(const TaskSet& tasks, int cores, double rel_tol = 1e-9);

}  // namespace easched
