#pragma once

/// \file incremental.hpp
/// \brief Incremental delta replanning: splice one task in or out of a plan.
///
/// The offline kernel is a pure function of the task set; the service layer
/// re-runs it from scratch on every admission quote. But a single arrival or
/// departure perturbs the plan only locally: the sweep-line boundary array
/// gains/loses at most two values, only subintervals intersecting the
/// changed task's `[R_i, D_i]` window change geometry or membership, and the
/// per-task refinement of every *other* task is untouched unless its
/// availability row shares a dirty subinterval. `DeltaPlanner` exploits
/// this: it caches the previous plan's full state (decomposition,
/// availability, refinement arrays, packed schedule) and, per delta,
///
///   1. splices the boundary array (an O(N) insert/erase into the sorted
///      distinct-value array, with multiplicities),
///   2. rebuilds the decomposition *in place* from the spliced boundaries
///      (`SubintervalDecomposition::assign` — linear passes, no allocation
///      within reserved capacity, bit-identical to a from-scratch build),
///   3. recomputes only the dirty columns of the availability matrix — the
///      columns inside the changed window plus the full live ranges of every
///      task overlapping it — and copies all other rows wholesale,
///   4. re-runs the O(n) F2 frequency refinement (closed form per task),
///   5. re-packs only the dirty subinterval span and splices the resulting
///      segment groups into the cached schedule, re-running the coalescing
///      fold once over the spliced groups.
///
/// The headline contract is *exactness*: the plan after `plan_to` is
/// bit-identical — same availability values, same frequencies, same energy
/// fold, same segment list — to `schedule_with_method` run from scratch on
/// the same task set, at any `Exec` pool size. Deltas that cannot keep that
/// promise cheaply (near-tolerance boundary collisions, too many ops, an
/// empty intermediate set) decline and fall back to the from-scratch path
/// inside `plan_to` itself; the result is exact either way. The
/// differential harness in `tests/differential.hpp` checks the contract on
/// randomized admit/remove sequences.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/sched/allocation.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

struct Exec;

/// Knobs for the delta planner.
struct DeltaOptions {
  int cores = 4;
  /// Heavy-subinterval rationing rule (the service's DER rung).
  AllocationMethod method = AllocationMethod::kDer;
  /// Boundary merge tolerance — must match the decomposition's (the splice
  /// declines instead of merging, so the cached boundary array stays exactly
  /// what the constructor's sort+merge would produce).
  double merge_tol = 1e-12;
  /// Largest admit/remove op count between two `plan_to` calls that is
  /// applied as a chain of single-task deltas; beyond it a from-scratch
  /// rebuild is cheaper and simpler.
  std::size_t max_ops = 4;
  /// Cap on repack-window growth steps while resolving schedule segments
  /// that straddle a cut; on overflow the whole horizon is repacked (still
  /// exact, never a full pipeline rebuild).
  std::size_t max_cut_expansion = 64;
};

/// What `plan_to` did, for metrics and tests.
struct DeltaOutcome {
  /// True when the quote was served by the splice path (possibly as a chain
  /// of single-task deltas); false when a from-scratch rebuild ran.
  bool delta = false;
  /// Single-task ops applied (0 when the set was unchanged).
  std::size_t ops = 0;
  /// Availability columns recomputed, summed over ops.
  std::size_t dirty_columns = 0;
  /// Subintervals re-packed, summed over ops.
  std::size_t repacked_columns = 0;
  /// Why the delta path declined (empty when `delta`).
  std::string decline_reason;
};

/// A served plan: the refined energy and the packed schedule.
struct DeltaPlan {
  double energy = 0.0;
  Schedule schedule;
};

/// Stateful incremental replanner. Not thread-safe; the service serializes
/// calls under its own mutex. Any exception out of `plan_to` leaves the
/// planner invalidated (the next call rebuilds from scratch), so a failed
/// delta can never serve a stale plan.
class DeltaPlanner {
 public:
  explicit DeltaPlanner(PowerModel power, DeltaOptions options = {});

  /// Produce the exact DER-rung plan for `live`, incrementally when the set
  /// differs from the previous call's by at most `max_ops` tasks (matched by
  /// exact field equality, in order), from scratch otherwise. `outcome`
  /// (optional) reports which path ran.
  DeltaPlan plan_to(const TaskSet& live, const Exec& exec, DeltaOutcome* outcome = nullptr);

  /// Drop the cached state; the next `plan_to` rebuilds from scratch.
  void invalidate();

  /// True when a cached plan is available for delta application.
  bool has_plan() const { return has_state_; }

  /// Cached availability of the last served plan (valid while `has_plan()`),
  /// e.g. as a warm-start hint for the exact solver.
  const Availability& availability() const { return avail_; }

  /// The refined F2 allocation of the cached plan: availability rows scaled
  /// down to each task's used fraction, so row totals sit at the
  /// heuristic's T_i. The natural warm-start iterate for the exact solvers
  /// (the unscaled availability overshoots the optimal totals). Only the
  /// cells are meaningful — cached row/column sums are not finalized.
  /// Valid while `has_plan()`.
  Availability refined_allocation() const;

  /// Cached decomposition (test hook; valid while `has_plan()`).
  const SubintervalDecomposition& decomposition() const { return *subs_; }

  /// Pre-size the cached decomposition's buffers (see
  /// `SubintervalDecomposition::reserve`) so deltas within the bounds splice
  /// without reallocating the CSR arena.
  void reserve(std::size_t tasks, std::size_t boundaries, std::size_t overlap_mass);

 private:
  void full_rebuild(const TaskSet& live, const Exec& exec);
  void apply_remove(std::size_t index, const Exec& exec, DeltaOutcome& out);
  /// Returns false (leaving state untouched) when the task's boundaries
  /// cannot be spliced cleanly; the caller falls back to a full rebuild.
  bool apply_add(const Task& task, const Exec& exec, DeltaOutcome& out);
  /// Shared tail of both single-task ops: recompute the `d1_count` dirty
  /// availability columns starting at `d1_first`, refold the sums, re-run
  /// the refinement, and splice the repacked window into the cached
  /// schedule. `removed_old` is the removed task's *old* id (or -1 for an
  /// append): its old segment groups are dropped and higher old ids shift
  /// down by one. `d1_count == 0` (removals only) means the removed task lay
  /// entirely outside the surviving horizon and only the schedule re-key
  /// runs.
  void rebuild_from_dirty(std::size_t d1_first, std::size_t d1_count,
                          const std::vector<char>& in_dirty_set, TaskId removed_old,
                          const Exec& exec, DeltaOutcome& out);
  void refine(const Exec& exec);
  /// True when `value` can be spliced into the boundary array without
  /// violating the constructor's merge invariant (every pair of distinct
  /// values farther apart than `merge_tol`).
  bool insertable(double value) const;
  /// Splice one boundary value in (count bump or clean insert).
  void insert_boundary(double value);
  /// Splice one boundary value out; returns true when the value vanished.
  bool erase_boundary(double value);

  PowerModel power_;
  DeltaOptions options_;

  bool has_state_ = false;
  /// False when the cached set needed tolerance-merging of boundaries; the
  /// splice cannot maintain the merge's keep-first-representative choice, so
  /// every delta declines until a clean rebuild.
  bool clean_ = true;
  std::vector<Task> tasks_;  ///< the planned set, in TaskId order
  TaskSet task_set_;         ///< the same set, validated
  std::vector<double> bound_values_;        ///< sorted distinct boundary values
  std::vector<std::int32_t> bound_counts_;  ///< multiplicity per value
  std::optional<SubintervalDecomposition> subs_;
  std::optional<IdealCase> ideal_;
  Availability avail_;
  std::vector<double> total_available_;
  std::vector<double> final_frequency_;
  std::vector<double> task_scale_;
  std::vector<double> task_energy_;
  double final_energy_ = 0.0;
  Schedule schedule_;

  /// Pending `reserve` request, applied when the decomposition exists.
  std::size_t reserve_tasks_ = 0;
  std::size_t reserve_bounds_ = 0;
  std::size_t reserve_mass_ = 0;
};

}  // namespace easched
