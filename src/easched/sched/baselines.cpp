#include "easched/sched/baselines.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/sched/feasibility.hpp"

namespace easched {

BaselineResult race_to_idle(const TaskSet& tasks, int cores, const PowerModel& power,
                            double frequency) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(frequency > 0.0);

  const EdfResult edf =
      edf_dispatch(tasks, cores, std::vector<double>(tasks.size(), frequency));
  BaselineResult result;
  result.schedule = edf.schedule;
  result.frequency = frequency;
  result.energy = edf.schedule.energy(power);
  result.feasible = edf.feasible();
  return result;
}

BaselineResult critical_speed(const TaskSet& tasks, int cores, const PowerModel& power,
                              double edf_margin) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(edf_margin >= 0.0);

  const double deadline_floor = minimal_feasible_frequency(tasks, cores);
  double frequency = std::max(deadline_floor, power.critical_frequency());

  // The flow bound certifies a migrating schedule exists; global EDF is not
  // always that schedule, so escalate geometrically until EDF succeeds.
  BaselineResult result;
  for (int attempt = 0; attempt < 64; ++attempt) {
    result = race_to_idle(tasks, cores, power, frequency);
    if (result.feasible) return result;
    frequency *= 1.0 + std::max(edf_margin, 1e-3);
  }
  // Unreachable for sane instances (EDF at enormous speed finishes each
  // task nearly instantly); return the last attempt regardless.
  return result;
}

}  // namespace easched
