#include "easched/sched/schedule_io.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "easched/common/csv.hpp"
#include "easched/common/table.hpp"

namespace easched {

std::string schedule_to_csv(const Schedule& schedule) {
  std::ostringstream os;
  os << "# cores=" << schedule.core_count() << "\n";
  std::vector<std::vector<std::string>> rows;
  rows.reserve(schedule.segments().size());
  for (const Segment& s : schedule.segments()) {
    rows.push_back({std::to_string(s.task), std::to_string(s.core), format_fixed(s.start, 9),
                    format_fixed(s.end, 9), format_fixed(s.frequency, 9)});
  }
  os << to_csv({"task", "core", "start", "end", "frequency"}, rows);
  return os.str();
}

Schedule schedule_from_csv(const std::string& text) {
  // Extract an optional "# cores=N" comment before the CSV parse strips it.
  int cores_hint = 0;
  {
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      const auto pos = line.find("# cores=");
      if (pos != std::string::npos) {
        cores_hint = std::atoi(line.c_str() + pos + 8);
        break;
      }
      if (!line.empty() && line.front() != '#') break;
    }
  }

  const CsvDocument doc = parse_csv(text);
  const std::size_t task = doc.column("task");
  const std::size_t core = doc.column("core");
  const std::size_t start = doc.column("start");
  const std::size_t end = doc.column("end");
  const std::size_t freq = doc.column("frequency");

  Schedule schedule;
  int max_core = -1;
  for (const auto& row : doc.rows) {
    Segment s;
    try {
      s.task = std::stoi(row[task]);
      s.core = std::stoi(row[core]);
      s.start = std::stod(row[start]);
      s.end = std::stod(row[end]);
      s.frequency = std::stod(row[freq]);
    } catch (const std::exception&) {
      throw std::runtime_error("non-numeric field in schedule CSV");
    }
    schedule.add(s);
    max_core = std::max(max_core, s.core);
  }
  schedule.set_core_count(std::max(cores_hint, max_core + 1));
  return schedule;
}

void write_schedule(const std::string& path, const Schedule& schedule) {
  write_file(path, schedule_to_csv(schedule));
}

Schedule read_schedule(const std::string& path) { return schedule_from_csv(read_file(path)); }

}  // namespace easched
