#include "easched/sched/render.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "easched/common/contracts.hpp"
#include "easched/common/table.hpp"

namespace easched {

char gantt_label(TaskId task) {
  EASCHED_EXPECTS(task >= 0);
  static constexpr char kAlphabet[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return kAlphabet[static_cast<std::size_t>(task) % (sizeof(kAlphabet) - 1)];
}

std::string render_gantt(const TaskSet& tasks, const Schedule& schedule,
                         const GanttOptions& options) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(options.width >= 8);

  const double begin = tasks.earliest_release();
  const double end = tasks.latest_deadline();
  const double span = end - begin;
  EASCHED_ASSERT(span > 0.0);
  const double cell = span / static_cast<double>(options.width);

  std::ostringstream os;
  os << "time [" << begin << ", " << end << "], one cell = " << cell << "\n";

  const int cores = std::max(schedule.core_count(), 1);
  for (int c = 0; c < cores; ++c) {
    std::string row(options.width, '.');
    for (const Segment& seg : schedule.segments_on_core(c)) {
      // Mark every cell whose majority is covered by this segment.
      for (std::size_t k = 0; k < options.width; ++k) {
        const double cell_begin = begin + cell * static_cast<double>(k);
        const double cell_mid = cell_begin + 0.5 * cell;
        if (cell_mid >= seg.start && cell_mid < seg.end) row[k] = gantt_label(seg.task);
      }
    }
    os << "core " << c << " |" << row << "|\n";
  }

  if (options.frequency_legend) {
    // Collect the distinct frequencies each task runs at.
    std::map<TaskId, std::vector<double>> freqs;
    for (const Segment& seg : schedule.segments()) {
      auto& list = freqs[seg.task];
      const bool seen = std::any_of(list.begin(), list.end(), [&](double f) {
        return std::abs(f - seg.frequency) < 1e-9 * std::max(1.0, seg.frequency);
      });
      if (!seen) list.push_back(seg.frequency);
    }
    for (const auto& [task, list] : freqs) {
      os << "  " << gantt_label(task) << " = task " << task << " (R=" << tasks.at(task).release
         << ", D=" << tasks.at(task).deadline << ", C=" << tasks.at(task).work << ") @";
      for (const double f : list) os << ' ' << format_fixed(f, 3);
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace easched
