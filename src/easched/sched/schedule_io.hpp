#pragma once

/// \file schedule_io.hpp
/// \brief Persist schedules as CSV (`task,core,start,end,frequency`).
///
/// Lets a runtime consume plans produced offline by this library (or replay
/// schedules produced elsewhere through the validator and simulator).

#include <string>

#include "easched/sched/schedule.hpp"

namespace easched {

/// Serialize a schedule. The header records the core count in a comment.
std::string schedule_to_csv(const Schedule& schedule);

/// Parse a schedule from CSV text. The core count is taken from the maximum
/// core id + 1 unless a `# cores=N` comment is present. Throws on malformed
/// input.
Schedule schedule_from_csv(const std::string& text);

/// File-based convenience wrappers.
void write_schedule(const std::string& path, const Schedule& schedule);
Schedule read_schedule(const std::string& path);

}  // namespace easched
