#pragma once

/// \file discrete_adapter.hpp
/// \brief Mapping continuous schedules onto discrete P-state ladders
///        (Section VI-C, the Intel-XScale experiment).
///
/// Real cores only offer a finite frequency ladder. The adapter re-costs the
/// paper's schedulers on such a ladder:
///  * *final* schedules (F1/F2) and the *ideal* case pick, per task, the
///    cheapest operating point that still meets the task's required rate
///    (`C_i / A_i` resp. `C_i / (D_i − R_i)`);
///  * *intermediate* schedules (I1/I2) quantize each constant-frequency
///    chunk up to the next level, because the chunk's time budget inside its
///    subinterval is binding.
/// A requirement above the top level is a deadline miss: the task runs at
/// `f_max` for its whole budget and still falls short. The paper observes
/// misses are frequent for I1/I2, non-negligible for F1 and negligible for
/// F2 — the fig11 bench reproduces those probabilities.

#include <vector>

#include "easched/power/discrete_levels.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Outcome of running one scheduler on a discrete ladder.
struct DiscreteRunReport {
  double energy = 0.0;
  std::vector<bool> missed;                ///< per-task deadline miss
  std::vector<double> chosen_frequency;    ///< per-task level (final/ideal only)

  std::size_t miss_count() const;
  bool any_miss() const;
};

/// Cheapest feasible operating point for `work` units within `budget` time:
/// argmin over levels `f ≥ work/budget` of `P(f)·work/f`. Returns `nullopt`
/// when even the top level is too slow (deadline miss).
std::optional<FrequencyLevel> best_feasible_level(const DiscreteLevels& levels, double work,
                                                  double budget);

/// Re-cost a final scheduling (F1/F2) on the ladder.
DiscreteRunReport quantize_final(const TaskSet& tasks, const MethodResult& method,
                                 const DiscreteLevels& levels);

/// Re-cost an intermediate scheduling (I1/I2) on the ladder.
DiscreteRunReport quantize_intermediate(const TaskSet& tasks, const MethodResult& method,
                                        const DiscreteLevels& levels);

/// Re-cost the ideal unlimited-core case on the ladder.
DiscreteRunReport quantize_ideal(const TaskSet& tasks, const IdealCase& ideal,
                                 const DiscreteLevels& levels);

}  // namespace easched
