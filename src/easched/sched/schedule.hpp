#pragma once

/// \file schedule.hpp
/// \brief Concrete multi-core schedules: segments, validation, energy.
///
/// A `Schedule` is the materialized output of a scheduling algorithm: a list
/// of execution segments, each binding a task to a core for a time span at a
/// constant frequency. Validation checks the constraints from the paper's
/// problem definition (Section III-C): segments lie in the task's
/// `[R_i, D_i]`, no core runs two tasks at once, no task runs on two cores at
/// once, and every task completes its execution requirement.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// One execution segment: task `task` runs on core `core` over
/// `[start, end)` at frequency `frequency`, completing
/// `frequency · (end − start)` units of work.
struct Segment {
  TaskId task = 0;
  CoreId core = 0;
  double start = 0.0;
  double end = 0.0;
  double frequency = 0.0;

  double duration() const { return end - start; }
  double work() const { return frequency * duration(); }

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Outcome of `Schedule::validate`.
struct ValidationReport {
  bool ok = true;
  /// Human-readable descriptions of every violation found.
  std::vector<std::string> violations;

  void fail(std::string message) {
    ok = false;
    violations.push_back(std::move(message));
  }
};

/// A complete schedule for a task set on `core_count` cores.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(int core_count) : core_count_(core_count) {}

  /// Bulk-adopt a prebuilt segment list (the packer's fused pack+coalesce
  /// path). Every segment passes the same checks `add` applies, but the
  /// vector moves in whole — no per-segment append.
  Schedule(int core_count, std::vector<Segment> segments);

  int core_count() const { return core_count_; }
  void set_core_count(int m) { core_count_ = m; }

  void add(Segment segment);

  /// Pre-size segment storage for `additional` more `add` calls, so bulk
  /// producers (the packer) never pay vector-doubling reallocation.
  void reserve(std::size_t additional) { segments_.reserve(segments_.size() + additional); }

  const std::vector<Segment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  /// All segments of one task, sorted by start time.
  std::vector<Segment> segments_of_task(TaskId task) const;

  /// All segments on one core, sorted by start time.
  std::vector<Segment> segments_on_core(CoreId core) const;

  /// Total execution time Σ duration over all segments of `task`.
  double execution_time(TaskId task) const;

  /// Work completed for `task`: Σ frequency·duration.
  double completed_work(TaskId task) const;

  /// Total energy under a continuous power model: Σ p(f)·duration.
  /// Idle cores sleep at zero power (Section III-B), so only segments count.
  double energy(const PowerModel& power) const;

  /// Check all model constraints against `tasks` (work completion up to
  /// `work_tol` relative tolerance; geometric checks up to `time_tol`).
  ValidationReport validate(const TaskSet& tasks, double work_tol = 1e-6,
                            double time_tol = 1e-7) const;

  /// Merge adjacent segments of the same task/core/frequency (cosmetic; keeps
  /// traces small). Returns the number of merges performed.
  std::size_t coalesce(double time_tol = 1e-9, double freq_tol = 1e-9);

 private:
  int core_count_ = 0;
  std::vector<Segment> segments_;
};

namespace detail {

/// Shared tail of `Schedule::coalesce` and the packer's fused
/// pack+coalesce: `grouped` holds segments grouped by (task, core), group
/// `g` occupying `[bounds[g].first, bounds[g].second)`. Sorts each group by
/// start time, merges adjacent segments whose boundary times and frequencies
/// agree within the tolerances, compacts the survivors in place (truncating
/// `grouped` to the merged prefix), and returns the number of merges.
std::size_t merge_grouped_segments(std::vector<Segment>& grouped,
                                   const std::vector<std::pair<std::size_t, std::size_t>>& bounds,
                                   double time_tol, double freq_tol);

}  // namespace detail

}  // namespace easched
