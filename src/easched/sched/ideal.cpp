#include "easched/sched/ideal.hpp"

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"

namespace easched {

IdealCase::IdealCase(const TaskSet& tasks, const PowerModel& power) : tasks_(&tasks) {
  frequency_.reserve(tasks.size());
  exec_end_.reserve(tasks.size());
  energy_.reserve(tasks.size());
  for (const Task& t : tasks) {
    const double f = power.optimal_frequency(t.work, t.window());
    EASCHED_ENSURES(f > 0.0);
    frequency_.push_back(f);
    exec_end_.push_back(t.release + t.work / f);
    const double e = power.energy_for_work(t.work, f);
    energy_.push_back(e);
    total_energy_ += e;
  }
}

double IdealCase::execution_time_in(TaskId i, double t1, double t2) const {
  EASCHED_EXPECTS(i >= 0 && static_cast<std::size_t>(i) < frequency_.size());
  const Task& t = tasks_->at(i);
  return overlap_length(t.release, exec_end_[static_cast<std::size_t>(i)], t1, t2);
}

}  // namespace easched
