#include "easched/sched/ideal.hpp"

#include "easched/common/contracts.hpp"

namespace easched {

IdealCase::IdealCase(const TaskSet& tasks, const PowerModel& power) {
  release_.reserve(tasks.size());
  frequency_.reserve(tasks.size());
  exec_end_.reserve(tasks.size());
  energy_.reserve(tasks.size());
  for (const Task& t : tasks) {
    const double f = power.optimal_frequency(t.work, t.window());
    EASCHED_ENSURES(f > 0.0);
    release_.push_back(t.release);
    frequency_.push_back(f);
    exec_end_.push_back(t.release + t.work / f);
    const double e = power.energy_for_work(t.work, f);
    energy_.push_back(e);
    total_energy_ += e;
  }
}

}  // namespace easched
