#pragma once

/// \file partitioned.hpp
/// \brief Partitioned (migration-free) scheduling.
///
/// The paper assumes migration is free; many deployments forbid it (cache
/// affinity, per-core queues). The standard alternative: *partition* tasks
/// onto cores, then schedule each core independently as a uniprocessor.
/// Here: worst-fit decreasing by intensity (balances per-core load), then
/// the paper's own pipeline with `m = 1` per core. Comparing against the
/// global (migrating) F2 quantifies what migration buys — the
/// `ablation_partitioned` bench.

#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/sched/allocation.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// How tasks are assigned to cores.
enum class PartitionHeuristic {
  /// Sort by intensity descending, place each task on the core with the
  /// least accumulated intensity (worst-fit decreasing; balances load).
  kWorstFitDecreasing,
  /// Sort by intensity descending, place on the first core whose
  /// accumulated intensity stays below 1 (first-fit decreasing; packs
  /// tightly, leaving later cores idle when possible).
  kFirstFitDecreasing,
};

/// A partitioned scheduling result.
struct PartitionedResult {
  /// Core assigned to each task.
  std::vector<CoreId> assignment;
  /// Combined schedule (every task's segments on its own core only).
  Schedule schedule;
  /// Sum of the per-core final energies.
  double total_energy = 0.0;
  /// Per-core accumulated intensity (the balance the heuristic achieved).
  std::vector<double> core_intensity;
};

/// Partition `tasks` onto `cores` cores and schedule each core with the
/// uniprocessor pipeline (final scheduling of `method`).
PartitionedResult schedule_partitioned(const TaskSet& tasks, int cores,
                                       const PowerModel& power,
                                       AllocationMethod method = AllocationMethod::kDer,
                                       PartitionHeuristic heuristic =
                                           PartitionHeuristic::kWorstFitDecreasing);

}  // namespace easched
