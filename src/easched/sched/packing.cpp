#include "easched/sched/packing.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/parallel/exec.hpp"

namespace easched {

void pack_subinterval(double begin, double end, int cores, const std::vector<PackItem>& items,
                      Schedule& schedule) {
  EASCHED_EXPECTS(end > begin);
  EASCHED_EXPECTS(cores > 0);
  const double length = end - begin;
  const double tol = 1e-9 * std::max(1.0, length);

  double total = 0.0;
  for (const PackItem& item : items) {
    EASCHED_EXPECTS(item.time >= 0.0);
    EASCHED_EXPECTS_MSG(leq_tol(item.time, length, tol),
                        "pack item exceeds subinterval length");
    total += item.time;
  }
  EASCHED_EXPECTS_MSG(leq_tol(total, static_cast<double>(cores) * length,
                              tol * static_cast<double>(cores)),
                      "pack items exceed subinterval capacity");

  CoreId core = 0;
  double cursor = begin;  // earliest free time on `core`
  for (const PackItem& item : items) {
    double remaining = std::min(item.time, length);
    if (remaining <= tol) continue;
    EASCHED_EXPECTS(item.frequency > 0.0);

    if (cursor + remaining > end + tol) {
      // Wrap-around: tail fills the current core to the subinterval end,
      // head restarts at `begin` on the next core. The head ends at
      // begin + (remaining − (end − cursor)) ≤ cursor, so the pieces are
      // disjoint in time.
      const double tail = end - cursor;
      const double head = remaining - tail;
      EASCHED_ASSERT(head <= cursor - begin + tol);
      // Rounding in `begin + head` may land one ulp past the tail's start,
      // momentarily putting the task on two cores; clamp to keep the pieces
      // exactly disjoint.
      const double head_end = std::min(begin + head, cursor);
      if (tail > tol) {
        schedule.add({item.task, core, cursor, end, item.frequency});
      }
      ++core;
      EASCHED_ASSERT(core < cores || head <= tol);
      if (head > tol) {
        schedule.add({item.task, core, begin, head_end, item.frequency});
        cursor = head_end;
      } else {
        cursor = begin;
      }
    } else {
      const double stop = std::min(end, cursor + remaining);
      schedule.add({item.task, core, cursor, stop, item.frequency});
      cursor = stop;
      if (end - cursor <= tol) {
        ++core;
        cursor = begin;
      }
    }
  }
}

Schedule pack_subintervals(const SubintervalDecomposition& subs, int cores,
                           const std::vector<std::vector<PackItem>>& items, const Exec& exec) {
  EASCHED_EXPECTS(items.size() == subs.size());
  std::vector<Schedule> fragments(subs.size());
  exec.loop(subs.size(), [&](std::size_t j) {
    if (items[j].empty()) return;
    fragments[j].set_core_count(cores);
    pack_subinterval(subs[j].begin, subs[j].end, cores, items[j], fragments[j]);
  });

  Schedule schedule(cores);
  for (const Schedule& fragment : fragments) {
    for (const Segment& segment : fragment.segments()) schedule.add(segment);
  }
  return schedule;
}

}  // namespace easched
