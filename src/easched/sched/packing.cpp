#include "easched/sched/packing.hpp"

#include <algorithm>
#include <utility>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/sched/pipeline.hpp"

namespace easched {

namespace {

/// Algorithm 1 core: validate the items and hand each produced segment to
/// `emit` in order. Every entry point shares this body, so the segment
/// sequence is identical whether it lands in a `Schedule`, an arena slice,
/// or a counting pass. `Item` is any type with `task` / `time` / `frequency`
/// members (`PackItem`, `IntermediatePiece`) — the kernel packs its piece
/// lists without a conversion copy.
template <typename Item, typename Emit>
void pack_items(double begin, double end, int cores, std::span<const Item> items, Emit&& emit) {
  EASCHED_EXPECTS(end > begin);
  EASCHED_EXPECTS(cores > 0);
  const double length = end - begin;
  const double tol = 1e-9 * std::max(1.0, length);

  double total = 0.0;
  for (const Item& item : items) {
    EASCHED_EXPECTS(item.time >= 0.0);
    EASCHED_EXPECTS_MSG(leq_tol(item.time, length, tol),
                        "pack item exceeds subinterval length");
    total += item.time;
  }
  EASCHED_EXPECTS_MSG(leq_tol(total, static_cast<double>(cores) * length,
                              tol * static_cast<double>(cores)),
                      "pack items exceed subinterval capacity");

  CoreId core = 0;
  double cursor = begin;  // earliest free time on `core`
  for (const Item& item : items) {
    double remaining = std::min(item.time, length);
    if (remaining <= tol) continue;
    EASCHED_EXPECTS(item.frequency > 0.0);

    if (cursor + remaining > end + tol) {
      // Wrap-around: tail fills the current core to the subinterval end,
      // head restarts at `begin` on the next core. The head ends at
      // begin + (remaining − (end − cursor)) ≤ cursor, so the pieces are
      // disjoint in time.
      const double tail = end - cursor;
      const double head = remaining - tail;
      EASCHED_ASSERT(head <= cursor - begin + tol);
      // Rounding in `begin + head` may land one ulp past the tail's start,
      // momentarily putting the task on two cores; clamp to keep the pieces
      // exactly disjoint.
      const double head_end = std::min(begin + head, cursor);
      if (tail > tol) {
        emit(Segment{item.task, core, cursor, end, item.frequency});
      }
      ++core;
      EASCHED_ASSERT(core < cores || head <= tol);
      if (head > tol) {
        emit(Segment{item.task, core, begin, head_end, item.frequency});
        cursor = head_end;
      } else {
        cursor = begin;
      }
    } else {
      const double stop = std::min(end, cursor + remaining);
      emit(Segment{item.task, core, cursor, stop, item.frequency});
      cursor = stop;
      if (end - cursor <= tol) {
        ++core;
        cursor = begin;
      }
    }
  }
}

/// Run `pack_items` over every non-empty CSR slice in subinterval order,
/// serially. Deterministic: two invocations with the same inputs emit the
/// same segment sequence, which is what lets the serial fused path count on
/// one pass and place on the next.
template <typename Item, typename Emit>
void pack_slices_serial(const SubintervalDecomposition& subs, int cores,
                        std::span<const Item> items, const std::vector<std::size_t>& offsets,
                        Emit&& emit) {
  for (std::size_t j = 0; j < subs.size(); ++j) {
    const std::size_t count = offsets[j + 1] - offsets[j];
    if (count == 0) continue;
    pack_items(subs[j].begin, subs[j].end, cores, items.subspan(offsets[j], count), emit);
  }
}

/// Pack every subinterval's CSR slice into one exactly-bounded arena.
/// Segment capacity per subinterval: one segment per item, plus one head
/// piece per wrap-around, and there are at most `cores` core advances. Each
/// subinterval packs into its own slice, so a parallel exec stays
/// write-disjoint and slice-order iteration reproduces the serial
/// concatenation exactly. Fills `slice` (arena offsets) and `emitted`
/// (segments produced per subinterval).
template <typename Item>
std::vector<Segment> pack_into_arena(const SubintervalDecomposition& subs, int cores,
                                     std::span<const Item> items,
                                     const std::vector<std::size_t>& offsets, const Exec& exec,
                                     std::vector<std::size_t>& slice,
                                     std::vector<std::size_t>& emitted) {
  slice.assign(subs.size() + 1, 0);
  for (std::size_t j = 0; j < subs.size(); ++j) {
    const std::size_t count = offsets[j + 1] - offsets[j];
    slice[j + 1] = slice[j] + (count == 0 ? 0 : count + static_cast<std::size_t>(cores));
  }
  std::vector<Segment> arena(slice.back());
  emitted.assign(subs.size(), 0);
  exec.loop(subs.size(), [&](std::size_t j) {
    const std::size_t count = offsets[j + 1] - offsets[j];
    if (count == 0) return;
    Segment* out = arena.data() + slice[j];
    const std::size_t budget = slice[j + 1] - slice[j];
    std::size_t produced = 0;
    pack_items(subs[j].begin, subs[j].end, cores, items.subspan(offsets[j], count),
               [&](const Segment& s) {
                 EASCHED_ASSERT(produced < budget);
                 out[produced++] = s;
               });
    emitted[j] = produced;
  });
  return arena;
}

template <typename Item>
Schedule pack_subintervals_uncoalesced(const SubintervalDecomposition& subs, int cores,
                                       std::span<const Item> items,
                                       const std::vector<std::size_t>& offsets,
                                       const Exec& exec);

/// Shared tail of both fused strategies: derive the group bounds from the
/// per-key offsets, sort/merge each group in place, adopt the buffer.
Schedule adopt_grouped(int cores, std::vector<Segment>&& grouped,
                       const std::vector<std::size_t>& key_offsets, double time_tol,
                       double freq_tol) {
  std::vector<std::pair<std::size_t, std::size_t>> group_bounds;
  for (std::size_t k = 0; k + 1 < key_offsets.size(); ++k) {
    if (key_offsets[k + 1] > key_offsets[k]) {
      group_bounds.emplace_back(key_offsets[k], key_offsets[k + 1]);
    }
  }
  detail::merge_grouped_segments(grouped, group_bounds, time_tol, freq_tol);
  return Schedule(cores, std::move(grouped));
}

/// Serial fused strategy: run Algorithm 1 twice. The first pass only counts
/// segments per (task, core) key; the second places each segment straight
/// into its group slot of the one output buffer. No staging arena at all: at
/// n = 10000 a plan's packs emit ~32 million segments each, and skipping the
/// ~1.3 GB arena (whose pages the host has to fault in) costs less than
/// re-running the packing arithmetic. `pack_all(emit)` must emit the same
/// segment sequence both times it is called.
template <typename PackAll, typename KeyOf>
Schedule serial_two_pass(int cores, PackAll&& pack_all, std::size_t key_count, KeyOf&& key_of,
                         double time_tol, double freq_tol) {
  std::vector<std::size_t> key_offsets(key_count + 1, 0);
  std::size_t total = 0;
  pack_all([&](const Segment& s) {
    ++key_offsets[key_of(s) + 1];
    ++total;
  });
  if (total == 0) return Schedule(cores);
  for (std::size_t k = 0; k < key_count; ++k) key_offsets[k + 1] += key_offsets[k];

  std::vector<Segment> grouped(total);
  std::vector<std::size_t> cursor(key_offsets.begin(), key_offsets.end() - 1);
  pack_all([&](const Segment& s) { grouped[cursor[key_of(s)]++] = s; });
  return adopt_grouped(cores, std::move(grouped), key_offsets, time_tol, freq_tol);
}

/// Parallel fused tail: stable-scatter a packed arena's live slices to
/// (task, core) groups in subinterval order, then merge. Visits segments in
/// the exact order the unfused packer concatenates them.
template <typename KeyOf>
Schedule scatter_arena(int cores, std::vector<Segment>&& arena,
                       const std::vector<std::size_t>& slice,
                       const std::vector<std::size_t>& emitted, std::size_t key_count,
                       KeyOf&& key_of, double time_tol, double freq_tol) {
  std::size_t total = 0;
  for (const std::size_t count : emitted) total += count;
  if (total == 0) return Schedule(cores);

  std::vector<std::size_t> key_offsets(key_count + 1, 0);
  for (std::size_t j = 0; j < emitted.size(); ++j) {
    for (std::size_t k = 0; k < emitted[j]; ++k) ++key_offsets[key_of(arena[slice[j] + k]) + 1];
  }
  for (std::size_t k = 0; k < key_count; ++k) key_offsets[k + 1] += key_offsets[k];

  std::vector<Segment> grouped(total);
  std::vector<std::size_t> cursor(key_offsets.begin(), key_offsets.end() - 1);
  for (std::size_t j = 0; j < emitted.size(); ++j) {
    for (std::size_t k = 0; k < emitted[j]; ++k) {
      const Segment& s = arena[slice[j] + k];
      grouped[cursor[key_of(s)]++] = s;
    }
  }
  arena.clear();
  arena.shrink_to_fit();
  return adopt_grouped(cores, std::move(grouped), key_offsets, time_tol, freq_tol);
}

/// The fused pack + coalesce body shared by the span-based public overloads:
/// returns exactly `pack_subintervals` + `Schedule::coalesce`, but the
/// ungrouped concatenated segment list never exists. Serial execs take the
/// no-arena two-pass strategy; parallel execs pack into a write-disjoint
/// arena first (counting twice under a pool would not be cheaper: the second
/// pass could not fan out without per-(subinterval, key) cursors) and
/// scatter it. Both visit segments in the exact order the unfused packer
/// concatenates them and the scatter is stable, so the groups match
/// `Schedule::coalesce` on that concatenation segment for segment — the
/// determinism suite checks the two strategies against each other bit for
/// bit.
template <typename Item>
Schedule pack_coalesced(const SubintervalDecomposition& subs, int cores,
                        std::span<const Item> items, const std::vector<std::size_t>& offsets,
                        const Exec& exec, double time_tol, double freq_tol) {
  EASCHED_EXPECTS(offsets.size() == subs.size() + 1);
  EASCHED_EXPECTS(offsets.front() == 0);
  EASCHED_EXPECTS(offsets.back() == items.size());

  // Key space: tasks come from the items; Algorithm 1 emits cores in
  // [0, cores] (the upper value only through float-tolerance wrap edges), so
  // `cores + 1` strides every possible (task, core) pair. Group order is
  // ascending (task, core) regardless of the stride's exact value.
  TaskId max_task = 0;
  for (const Item& item : items) max_task = std::max(max_task, item.task);
  const std::size_t stride = static_cast<std::size_t>(cores) + 1;
  const std::size_t key_count = (static_cast<std::size_t>(max_task) + 1) * stride;
  const auto key_of = [stride](const Segment& s) {
    return static_cast<std::size_t>(s.task) * stride + static_cast<std::size_t>(s.core);
  };

  if (key_count > 2 * items.size() + static_cast<std::size_t>(cores) + 1024) {
    // Degenerate id range (a key table far larger than the segment count):
    // fall back to the unfused path rather than allocating it.
    Schedule schedule = pack_subintervals_uncoalesced(subs, cores, items, offsets, exec);
    schedule.coalesce(time_tol, freq_tol);
    return schedule;
  }

  if (!exec.parallel(subs.size())) {
    return serial_two_pass(
        cores,
        [&](auto&& emit) {
          pack_slices_serial(subs, cores, items, offsets, std::forward<decltype(emit)>(emit));
        },
        key_count, key_of, time_tol, freq_tol);
  }

  std::vector<std::size_t> slice;
  std::vector<std::size_t> emitted;
  std::vector<Segment> arena = pack_into_arena(subs, cores, items, offsets, exec, slice, emitted);
  return scatter_arena(cores, std::move(arena), slice, emitted, key_count, key_of, time_tol,
                       freq_tol);
}

/// Generator-fed fused body. Mirrors `pack_coalesced` exactly, with
/// `source(j)` standing in for the CSR slice of subinterval `j`: the serial
/// strategy regenerates each slice once per pass, the parallel one
/// regenerates it once to size the arena (serially, from the calling thread)
/// and once to pack (concurrently, on the pool). `source` is required to be
/// a pure function of `j`, so every regeneration yields the same items and
/// both strategies emit the segment sequence the span path would. The
/// degenerate-id fallback is absent by contract — `max_task` promises a
/// dense id range.
Schedule pack_coalesced_source(const SubintervalDecomposition& subs, int cores,
                               const std::function<std::span<const PackItem>(std::size_t)>& source,
                               TaskId max_task, const Exec& exec, double time_tol,
                               double freq_tol) {
  EASCHED_EXPECTS(max_task >= 0);
  const std::size_t stride = static_cast<std::size_t>(cores) + 1;
  const std::size_t key_count = (static_cast<std::size_t>(max_task) + 1) * stride;
  const auto key_of = [stride](const Segment& s) {
    return static_cast<std::size_t>(s.task) * stride + static_cast<std::size_t>(s.core);
  };

  if (!exec.parallel(subs.size())) {
    return serial_two_pass(
        cores,
        [&](auto&& emit) {
          for (std::size_t j = 0; j < subs.size(); ++j) {
            const std::span<const PackItem> items = source(j);
            if (items.empty()) continue;
            pack_items(subs[j].begin, subs[j].end, cores, items, emit);
          }
        },
        key_count, key_of, time_tol, freq_tol);
  }

  std::vector<std::size_t> slice(subs.size() + 1, 0);
  for (std::size_t j = 0; j < subs.size(); ++j) {
    const std::size_t count = source(j).size();
    slice[j + 1] = slice[j] + (count == 0 ? 0 : count + static_cast<std::size_t>(cores));
  }
  std::vector<Segment> arena(slice.back());
  std::vector<std::size_t> emitted(subs.size(), 0);
  exec.loop(subs.size(), [&](std::size_t j) {
    const std::span<const PackItem> items = source(j);
    if (items.empty()) return;
    Segment* out = arena.data() + slice[j];
    const std::size_t budget = slice[j + 1] - slice[j];
    std::size_t produced = 0;
    pack_items(subs[j].begin, subs[j].end, cores, items, [&](const Segment& s) {
      EASCHED_ASSERT(produced < budget);
      out[produced++] = s;
    });
    emitted[j] = produced;
  });
  return scatter_arena(cores, std::move(arena), slice, emitted, key_count, key_of, time_tol,
                       freq_tol);
}

/// The unfused CSR packer body (also the fused path's degenerate-id
/// fallback): arena, then ordered gather into a `Schedule`.
template <typename Item>
Schedule pack_subintervals_uncoalesced(const SubintervalDecomposition& subs, int cores,
                                       std::span<const Item> items,
                                       const std::vector<std::size_t>& offsets,
                                       const Exec& exec) {
  EASCHED_EXPECTS(offsets.size() == subs.size() + 1);
  EASCHED_EXPECTS(offsets.front() == 0);
  EASCHED_EXPECTS(offsets.back() == items.size());

  std::vector<std::size_t> slice;
  std::vector<std::size_t> emitted;
  const std::vector<Segment> arena =
      pack_into_arena(subs, cores, items, offsets, exec, slice, emitted);

  std::size_t total = 0;
  for (const std::size_t count : emitted) total += count;
  Schedule schedule(cores);
  schedule.reserve(total);
  for (std::size_t j = 0; j < subs.size(); ++j) {
    for (std::size_t k = 0; k < emitted[j]; ++k) schedule.add(arena[slice[j] + k]);
  }
  return schedule;
}

}  // namespace

void pack_subinterval(double begin, double end, int cores, std::span<const PackItem> items,
                      Schedule& schedule) {
  pack_items(begin, end, cores, items, [&](const Segment& s) { schedule.add(s); });
}

Schedule pack_subintervals(const SubintervalDecomposition& subs, int cores,
                           const std::vector<std::vector<PackItem>>& items, const Exec& exec) {
  EASCHED_EXPECTS(items.size() == subs.size());
  std::vector<Schedule> fragments(subs.size());
  exec.loop(subs.size(), [&](std::size_t j) {
    if (items[j].empty()) return;
    fragments[j].set_core_count(cores);
    fragments[j].reserve(items[j].size() + static_cast<std::size_t>(cores));
    pack_subinterval(subs[j].begin, subs[j].end, cores, items[j], fragments[j]);
  });

  std::size_t total = 0;
  for (const Schedule& fragment : fragments) total += fragment.segments().size();
  Schedule schedule(cores);
  schedule.reserve(total);
  for (const Schedule& fragment : fragments) {
    for (const Segment& segment : fragment.segments()) schedule.add(segment);
  }
  return schedule;
}

Schedule pack_subintervals(const SubintervalDecomposition& subs, int cores,
                           const std::vector<PackItem>& items,
                           const std::vector<std::size_t>& offsets, const Exec& exec) {
  return pack_subintervals_uncoalesced(subs, cores, std::span<const PackItem>(items), offsets,
                                       exec);
}

Schedule pack_subintervals_coalesced(const SubintervalDecomposition& subs, int cores,
                                     std::span<const PackItem> items,
                                     const std::vector<std::size_t>& offsets, const Exec& exec,
                                     double time_tol, double freq_tol) {
  return pack_coalesced(subs, cores, items, offsets, exec, time_tol, freq_tol);
}

Schedule pack_subintervals_coalesced(const SubintervalDecomposition& subs, int cores,
                                     std::span<const IntermediatePiece> pieces,
                                     const std::vector<std::size_t>& offsets, const Exec& exec,
                                     double time_tol, double freq_tol) {
  return pack_coalesced(subs, cores, pieces, offsets, exec, time_tol, freq_tol);
}

Schedule pack_subintervals_coalesced(
    const SubintervalDecomposition& subs, int cores,
    const std::function<std::span<const PackItem>(std::size_t)>& source, TaskId max_task,
    const Exec& exec, double time_tol, double freq_tol) {
  return pack_coalesced_source(subs, cores, source, max_task, exec, time_tol, freq_tol);
}

}  // namespace easched
