#include "easched/sched/fallback.hpp"

#include <cmath>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "easched/common/contracts.hpp"
#include "easched/obs/trace.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/tasksys/subintervals.hpp"

namespace easched {

std::string_view plan_rung_name(PlanRung rung) {
  switch (rung) {
    case PlanRung::kExact:
      return "exact";
    case PlanRung::kDer:
      return "der";
    case PlanRung::kEven:
      return "even";
    case PlanRung::kNone:
      return "none";
  }
  return "unknown";
}

std::string_view rung_failure_name(RungFailure failure) {
  switch (failure) {
    case RungFailure::kNone:
      return "none";
    case RungFailure::kTimeout:
      return "timeout";
    case RungFailure::kIterationCap:
      return "iteration_cap";
    case RungFailure::kNumericalBreakdown:
      return "numerical_breakdown";
    case RungFailure::kStallInjected:
      return "stall_injected";
    case RungFailure::kInvalidPlan:
      return "invalid_plan";
    case RungFailure::kNonFiniteEnergy:
      return "non_finite_energy";
    case RungFailure::kException:
      return "exception";
  }
  return "unknown";
}

bool FallbackOutcome::degraded() const {
  if (rejected() || attempts.empty()) return false;
  return served != attempts.front().rung;
}

std::string FallbackOutcome::reason() const {
  std::string out;
  for (const RungAttempt& a : attempts) {
    if (a.served) continue;
    if (!out.empty()) out += "; ";
    out += plan_rung_name(a.rung);
    out += ": ";
    out += rung_failure_name(a.failure);
    if (!a.detail.empty()) {
      out += " (";
      out += a.detail;
      out += ")";
    }
  }
  if (out.empty()) out = "no rungs attempted";
  return out;
}

namespace {

/// Map a non-converged solver ending onto the rung-failure taxonomy.
RungFailure failure_of_status(SolverStatus status) {
  switch (status) {
    case SolverStatus::kConverged:
      return RungFailure::kNone;
    case SolverStatus::kIterationCap:
      return RungFailure::kIterationCap;
    case SolverStatus::kBudgetExhausted:
      return RungFailure::kTimeout;
    case SolverStatus::kNumericalBreakdown:
      return RungFailure::kNumericalBreakdown;
    case SolverStatus::kStallInjected:
      return RungFailure::kStallInjected;
  }
  return RungFailure::kException;
}

/// Validate + finite-energy gate shared by every rung. On success fills
/// `plan` and flips the attempt to served; otherwise records why not.
bool try_serve(const TaskSet& tasks, Schedule schedule, double energy, double validate_tol,
               RungAttempt& attempt, FallbackPlan& plan) {
  if (!std::isfinite(energy)) {
    attempt.failure = RungFailure::kNonFiniteEnergy;
    attempt.detail = "energy is not finite";
    return false;
  }
  const ValidationReport report = schedule.validate(tasks, validate_tol, validate_tol);
  if (!report.ok) {
    attempt.failure = RungFailure::kInvalidPlan;
    attempt.detail = report.violations.empty() ? std::string("validator failed")
                                               : report.violations.front();
    return false;
  }
  attempt.served = true;
  attempt.failure = RungFailure::kNone;
  plan.schedule = std::move(schedule);
  plan.energy = energy;
  plan.outcome.served = attempt.rung;
  return true;
}

/// The exact rung: budget-capped convex solve, then Algorithm-1
/// materialization of the optimal allocation.
bool attempt_exact(const TaskSet& tasks, const SubintervalDecomposition& subs, int cores,
                   const PowerModel& power, const FallbackOptions& options, RungAttempt& attempt,
                   FallbackPlan& plan) {
  attempt.rung = PlanRung::kExact;
  try {
    SolverOptions solver_options = options.exact;
    solver_options.budget = options.budget;
    const SolverResult solved = solve_optimal_allocation(tasks, subs, cores, power, solver_options);
    if (!solved.converged) {
      attempt.failure = failure_of_status(solved.status);
      attempt.detail = std::string("solver status: ") + std::string(solver_status_name(solved.status));
      return false;
    }
    if (solved.warm_started) attempt.detail = "warm_started";
    Schedule schedule = materialize_optimal_schedule(tasks, subs, cores, solved);
    return try_serve(tasks, std::move(schedule), solved.energy, options.validate_tol, attempt, plan);
  } catch (const std::exception& e) {
    attempt.failure = RungFailure::kException;
    attempt.detail = e.what();
    return false;
  }
}

/// A heuristic rung (F2/DER or F1/even) riding the existing pipeline.
bool attempt_heuristic(const TaskSet& tasks, const SubintervalDecomposition& subs, int cores,
                       const PowerModel& power, const IdealCase& ideal, AllocationMethod method,
                       const FallbackOptions& options, const Exec& exec, RungAttempt& attempt,
                       FallbackPlan& plan) {
  attempt.rung = method == AllocationMethod::kDer ? PlanRung::kDer : PlanRung::kEven;
  try {
    MethodResult result = schedule_with_method(tasks, subs, cores, power, ideal, method, exec);
    return try_serve(tasks, std::move(result.final_schedule), result.final_energy,
                     options.validate_tol, attempt, plan);
  } catch (const std::exception& e) {
    attempt.failure = RungFailure::kException;
    attempt.detail = e.what();
    return false;
  }
}

/// Trace status for a finished rung attempt: "served" or the failure name
/// (both static storage, as SpanRecord requires).
const char* attempt_status(const RungAttempt& attempt) {
  return attempt.served ? "served" : rung_failure_name(attempt.failure).data();
}

/// Span name for a rung (static storage).
const char* rung_span_name(PlanRung rung) {
  switch (rung) {
    case PlanRung::kExact:
      return "rung.exact";
    case PlanRung::kDer:
      return "rung.der";
    case PlanRung::kEven:
      return "rung.even";
    case PlanRung::kNone:
      break;
  }
  return "rung.none";
}

}  // namespace

FallbackPlan plan_with_fallback(const TaskSet& tasks, int cores, const PowerModel& power,
                                const FallbackOptions& options) {
  return plan_with_fallback(tasks, cores, power, options, Exec::serial());
}

FallbackPlan plan_with_fallback(const TaskSet& tasks, int cores, const PowerModel& power,
                                const FallbackOptions& options, const Exec& exec) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);

  obs::Span chain_span("fallback.plan");
  chain_span.arg("tasks", static_cast<double>(tasks.size()));

  FallbackPlan plan;
  auto& attempts = plan.outcome.attempts;

  // Shared geometry for every rung. If even this fails the request is
  // structurally broken — record it once and reject.
  std::optional<SubintervalDecomposition> subs;
  try {
    subs.emplace(tasks, 1e-12, exec);
  } catch (const std::exception& e) {
    RungAttempt& attempt = attempts.emplace_back();
    attempt.rung = options.try_exact ? PlanRung::kExact : PlanRung::kDer;
    attempt.failure = RungFailure::kException;
    attempt.detail = std::string("decomposition failed: ") + e.what();
    return plan;
  }

  if (options.try_exact) {
    obs::Span rung_span("rung.exact");
    RungAttempt& attempt = attempts.emplace_back();
    const bool served = attempt_exact(tasks, *subs, cores, power, options, attempt, plan);
    rung_span.set_status(attempt_status(attempt));
    if (served) return plan;
  }

  // The heuristic rungs share the ideal case. A failure here fails both
  // rungs at once (they cannot run without it).
  std::optional<IdealCase> ideal;
  try {
    ideal.emplace(tasks, power);
  } catch (const std::exception& e) {
    RungAttempt& attempt = attempts.emplace_back();
    attempt.rung = PlanRung::kDer;
    attempt.failure = RungFailure::kException;
    attempt.detail = std::string("ideal case failed: ") + e.what();
    return plan;
  }

  for (const AllocationMethod method : {AllocationMethod::kDer, AllocationMethod::kEven}) {
    if (method == AllocationMethod::kDer && options.first_heuristic == PlanRung::kEven) {
      continue;  // brownout ladder entered the chain below F2
    }
    obs::Span rung_span(
        rung_span_name(method == AllocationMethod::kDer ? PlanRung::kDer : PlanRung::kEven));
    RungAttempt& attempt = attempts.emplace_back();
    const bool served = attempt_heuristic(tasks, *subs, cores, power, *ideal, method, options,
                                          exec, attempt, plan);
    rung_span.set_status(attempt_status(attempt));
    if (served) return plan;
  }
  return plan;  // all rungs recorded their failures; outcome stays rejected
}

}  // namespace easched
