#pragma once

/// \file core_selection.hpp
/// \brief Choosing how many cores to power on (Section VI-D).
///
/// With non-zero static power, spreading tasks over all cores is not always
/// best. The paper's remark: before running, simulate the chosen scheduler
/// with 1, 2, …, m cores and execute with the count that minimizes energy.

#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Energy of one candidate core count.
struct CoreCountCandidate {
  int cores = 0;
  double final_energy = 0.0;
};

/// Outcome of the search.
struct CoreSelectionResult {
  int best_cores = 0;
  double best_energy = 0.0;
  /// Energies for every candidate count 1…max_cores, ascending core count.
  std::vector<CoreCountCandidate> candidates;
  /// The winning pipeline output (final schedule ready to run).
  MethodResult best;
};

/// Evaluate `method` with every core count in [1, max_cores] and return the
/// most energy-efficient configuration.
CoreSelectionResult select_core_count(const TaskSet& tasks, int max_cores,
                                      const PowerModel& power,
                                      AllocationMethod method = AllocationMethod::kDer);

}  // namespace easched
