#pragma once

/// \file baselines.hpp
/// \brief Non-DVFS baselines the subinterval schedulers compete against.
///
/// Two classic operating-system policies:
///  * **race-to-idle** — run everything at one fixed high frequency
///    (typically `f_max`) under EDF and sleep as soon as possible. The
///    industry default when DVFS is distrusted; optimal when static power
///    dominates so strongly that `f* ≥ f_max`.
///  * **critical-speed** — run everything at `max(f*, minimal feasible
///    frequency)`: the best *single global frequency*, using the exact
///    feasibility analysis to find the smallest ceiling that still meets
///    all deadlines.
/// Both materialize through the online EDF dispatcher, so the resulting
/// schedules are concrete and validated like every other plan in the
/// library. The `ablation_baselines` bench maps out where per-task DVFS
/// (F2) beats them.

#include "easched/power/power_model.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/sim/edf.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Result of a fixed-frequency baseline run.
struct BaselineResult {
  Schedule schedule;      ///< EDF at the chosen frequency
  double frequency = 0.0; ///< the single frequency used
  double energy = 0.0;    ///< energy under `power`
  bool feasible = false;  ///< all deadlines met
};

/// Race-to-idle: global EDF with every task at `frequency` (e.g. the
/// platform maximum). Feasibility is whatever EDF achieves at that speed.
BaselineResult race_to_idle(const TaskSet& tasks, int cores, const PowerModel& power,
                            double frequency);

/// Critical-speed: the cheapest single global frequency. Uses
/// `minimal_feasible_frequency` for the deadline floor and the power
/// model's critical frequency for the energy floor. EDF can be slightly
/// weaker than the optimal migrating schedule the flow test certifies, so
/// the frequency is nudged up by `edf_margin` until EDF succeeds.
BaselineResult critical_speed(const TaskSet& tasks, int cores, const PowerModel& power,
                              double edf_margin = 0.01);

}  // namespace easched
