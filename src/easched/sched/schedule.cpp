#include "easched/sched/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"

namespace easched {

namespace {

std::string describe(const Segment& s) {
  std::ostringstream os;
  os << "task " << s.task << " on core " << s.core << " [" << s.start << ", " << s.end << ") @ f="
     << s.frequency;
  return os.str();
}

/// Check a start-sorted segment list for pairwise overlap; report via `on_overlap`.
template <typename Fn>
void check_overlaps(const std::vector<Segment>& sorted, double tol, Fn&& on_overlap) {
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].start < sorted[i - 1].end - tol) {
      on_overlap(sorted[i - 1], sorted[i]);
    }
  }
}

}  // namespace

void Schedule::add(Segment segment) {
  EASCHED_EXPECTS(segment.end > segment.start);
  EASCHED_EXPECTS(segment.frequency > 0.0);
  EASCHED_EXPECTS(segment.task >= 0);
  EASCHED_EXPECTS(segment.core >= 0);
  segments_.push_back(segment);
}

std::vector<Segment> Schedule::segments_of_task(TaskId task) const {
  std::vector<Segment> out;
  for (const Segment& s : segments_) {
    if (s.task == task) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  return out;
}

std::vector<Segment> Schedule::segments_on_core(CoreId core) const {
  std::vector<Segment> out;
  for (const Segment& s : segments_) {
    if (s.core == core) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  return out;
}

double Schedule::execution_time(TaskId task) const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    if (s.task == task) total += s.duration();
  }
  return total;
}

double Schedule::completed_work(TaskId task) const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    if (s.task == task) total += s.work();
  }
  return total;
}

double Schedule::energy(const PowerModel& power) const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    total += power.energy_for_duration(s.duration(), s.frequency);
  }
  return total;
}

ValidationReport Schedule::validate(const TaskSet& tasks, double work_tol,
                                    double time_tol) const {
  ValidationReport report;

  // Segment sanity + window containment.
  for (const Segment& s : segments_) {
    if (s.task < 0 || static_cast<std::size_t>(s.task) >= tasks.size()) {
      report.fail("segment references unknown " + describe(s));
      continue;
    }
    if (s.core < 0 || s.core >= core_count_) {
      report.fail("segment uses core outside [0, m): " + describe(s));
    }
    const Task& t = tasks.at(s.task);
    if (!geq_tol(s.start, t.release, time_tol)) {
      report.fail("segment starts before release: " + describe(s));
    }
    if (!leq_tol(s.end, t.deadline, time_tol)) {
      report.fail("segment ends after deadline: " + describe(s));
    }
  }

  // No core executes two tasks at once.
  for (CoreId core = 0; core < core_count_; ++core) {
    check_overlaps(segments_on_core(core), time_tol, [&](const Segment& a, const Segment& b) {
      report.fail("core overlap: " + describe(a) + " vs " + describe(b));
    });
  }

  // No task runs on two cores at once.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    check_overlaps(segments_of_task(static_cast<TaskId>(i)), time_tol,
                   [&](const Segment& a, const Segment& b) {
                     report.fail("task self-overlap: " + describe(a) + " vs " + describe(b));
                   });
  }

  // Execution requirements are met.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double done = completed_work(static_cast<TaskId>(i));
    const double required = tasks[i].work;
    if (done < required * (1.0 - work_tol) - work_tol) {
      std::ostringstream os;
      os << "task " << i << " completes " << done << " of required " << required;
      report.fail(os.str());
    }
  }
  return report;
}

std::size_t Schedule::coalesce(double time_tol, double freq_tol) {
  std::map<std::pair<TaskId, CoreId>, std::vector<Segment>> groups;
  for (const Segment& s : segments_) groups[{s.task, s.core}].push_back(s);

  std::size_t merges = 0;
  std::vector<Segment> merged;
  merged.reserve(segments_.size());
  for (auto& [key, group] : groups) {
    std::sort(group.begin(), group.end(),
              [](const Segment& a, const Segment& b) { return a.start < b.start; });
    for (const Segment& s : group) {
      if (!merged.empty()) {
        Segment& last = merged.back();
        if (last.task == s.task && last.core == s.core &&
            almost_equal(last.end, s.start, time_tol, 0.0) &&
            almost_equal(last.frequency, s.frequency, freq_tol, freq_tol)) {
          last.end = s.end;
          ++merges;
          continue;
        }
      }
      merged.push_back(s);
    }
  }
  segments_ = std::move(merged);
  return merges;
}

}  // namespace easched
