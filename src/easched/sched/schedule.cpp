#include "easched/sched/schedule.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <sstream>
#include <utility>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"

namespace easched {

namespace {

std::string describe(const Segment& s) {
  std::ostringstream os;
  os << "task " << s.task << " on core " << s.core << " [" << s.start << ", " << s.end << ") @ f="
     << s.frequency;
  return os.str();
}

/// Check a start-sorted segment list for pairwise overlap; report via `on_overlap`.
template <typename Fn>
void check_overlaps(const std::vector<Segment>& sorted, double tol, Fn&& on_overlap) {
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].start < sorted[i - 1].end - tol) {
      on_overlap(sorted[i - 1], sorted[i]);
    }
  }
}

void check_segment(const Segment& segment) {
  EASCHED_EXPECTS(segment.end > segment.start);
  EASCHED_EXPECTS(segment.frequency > 0.0);
  EASCHED_EXPECTS(segment.task >= 0);
  EASCHED_EXPECTS(segment.core >= 0);
}

}  // namespace

Schedule::Schedule(int core_count, std::vector<Segment> segments)
    : core_count_(core_count), segments_(std::move(segments)) {
  for (const Segment& s : segments_) check_segment(s);
}

void Schedule::add(Segment segment) {
  check_segment(segment);
  segments_.push_back(segment);
}

std::vector<Segment> Schedule::segments_of_task(TaskId task) const {
  std::vector<Segment> out;
  for (const Segment& s : segments_) {
    if (s.task == task) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  return out;
}

std::vector<Segment> Schedule::segments_on_core(CoreId core) const {
  std::vector<Segment> out;
  for (const Segment& s : segments_) {
    if (s.core == core) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  return out;
}

double Schedule::execution_time(TaskId task) const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    if (s.task == task) total += s.duration();
  }
  return total;
}

double Schedule::completed_work(TaskId task) const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    if (s.task == task) total += s.work();
  }
  return total;
}

double Schedule::energy(const PowerModel& power) const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    total += power.energy_for_duration(s.duration(), s.frequency);
  }
  return total;
}

ValidationReport Schedule::validate(const TaskSet& tasks, double work_tol,
                                    double time_tol) const {
  ValidationReport report;

  // Segment sanity + window containment.
  for (const Segment& s : segments_) {
    if (s.task < 0 || static_cast<std::size_t>(s.task) >= tasks.size()) {
      report.fail("segment references unknown " + describe(s));
      continue;
    }
    if (s.core < 0 || s.core >= core_count_) {
      report.fail("segment uses core outside [0, m): " + describe(s));
    }
    const Task& t = tasks.at(s.task);
    if (!geq_tol(s.start, t.release, time_tol)) {
      report.fail("segment starts before release: " + describe(s));
    }
    if (!leq_tol(s.end, t.deadline, time_tol)) {
      report.fail("segment ends after deadline: " + describe(s));
    }
  }

  // No core executes two tasks at once.
  for (CoreId core = 0; core < core_count_; ++core) {
    check_overlaps(segments_on_core(core), time_tol, [&](const Segment& a, const Segment& b) {
      report.fail("core overlap: " + describe(a) + " vs " + describe(b));
    });
  }

  // No task runs on two cores at once.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    check_overlaps(segments_of_task(static_cast<TaskId>(i)), time_tol,
                   [&](const Segment& a, const Segment& b) {
                     report.fail("task self-overlap: " + describe(a) + " vs " + describe(b));
                   });
  }

  // Execution requirements are met.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double done = completed_work(static_cast<TaskId>(i));
    const double required = tasks[i].work;
    if (done < required * (1.0 - work_tol) - work_tol) {
      std::ostringstream os;
      os << "task " << i << " completes " << done << " of required " << required;
      report.fail(os.str());
    }
  }
  return report;
}

std::size_t detail::merge_grouped_segments(
    std::vector<Segment>& grouped,
    const std::vector<std::pair<std::size_t, std::size_t>>& bounds, double time_tol,
    double freq_tol) {
  // The groups tile `grouped` in ascending order, so survivors compact into
  // a prefix with one in-place write cursor — no second buffer the size of
  // the segment list. (The write cursor never overtakes the read index, and
  // sorting group g touches only [g.first, g.second), which lies at or past
  // the cursor.)
  std::size_t merges = 0;
  std::size_t w = 0;
  for (const auto& [group_begin, group_end] : bounds) {
    std::sort(grouped.begin() + static_cast<std::ptrdiff_t>(group_begin),
              grouped.begin() + static_cast<std::ptrdiff_t>(group_end),
              [](const Segment& a, const Segment& b) { return a.start < b.start; });
    const std::size_t group_w = w;
    for (std::size_t i = group_begin; i < group_end; ++i) {
      const Segment s = grouped[i];
      if (w > group_w) {
        Segment& last = grouped[w - 1];
        if (last.task == s.task && last.core == s.core &&
            almost_equal(last.end, s.start, time_tol, 0.0) &&
            almost_equal(last.frequency, s.frequency, freq_tol, freq_tol)) {
          last.end = s.end;
          ++merges;
          continue;
        }
      }
      grouped[w++] = s;
    }
  }
  grouped.resize(w);
  return merges;
}

std::size_t Schedule::coalesce(double time_tol, double freq_tol) {
  if (segments_.empty()) return 0;

  // Group by (task, core) with keys ascending and the original segment order
  // preserved inside each group. A stable counting sort does this in two
  // linear passes over a dense key space; schedules with huge sparse task
  // ids fall back to a stable comparison sort. Both orders match the
  // (task, core)-keyed map this function historically used, so the merged
  // output is unchanged segment for segment.
  TaskId max_task = 0;
  CoreId max_core = 0;
  for (const Segment& s : segments_) {
    max_task = std::max(max_task, s.task);
    max_core = std::max(max_core, s.core);
  }
  const std::size_t stride = static_cast<std::size_t>(max_core) + 1;
  const std::size_t key_count = (static_cast<std::size_t>(max_task) + 1) * stride;
  const auto key_of = [stride](const Segment& s) {
    return static_cast<std::size_t>(s.task) * stride + static_cast<std::size_t>(s.core);
  };

  std::vector<Segment> grouped;
  std::vector<std::pair<std::size_t, std::size_t>> group_bounds;
  if (key_count <= 2 * segments_.size() + 1024) {
    std::vector<std::size_t> offsets(key_count + 1, 0);
    for (const Segment& s : segments_) ++offsets[key_of(s) + 1];
    for (std::size_t k = 0; k < key_count; ++k) offsets[k + 1] += offsets[k];
    grouped.resize(segments_.size());
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Segment& s : segments_) grouped[cursor[key_of(s)]++] = s;
    group_bounds.reserve(key_count);
    for (std::size_t k = 0; k < key_count; ++k) {
      if (offsets[k + 1] > offsets[k]) group_bounds.emplace_back(offsets[k], offsets[k + 1]);
    }
  } else {
    std::vector<std::size_t> index(segments_.size());
    std::iota(index.begin(), index.end(), std::size_t{0});
    std::stable_sort(index.begin(), index.end(), [&](std::size_t a, std::size_t b) {
      return key_of(segments_[a]) < key_of(segments_[b]);
    });
    grouped.reserve(segments_.size());
    for (const std::size_t i : index) grouped.push_back(segments_[i]);
    std::size_t begin = 0;
    for (std::size_t i = 1; i <= grouped.size(); ++i) {
      if (i == grouped.size() || key_of(grouped[i]) != key_of(grouped[begin])) {
        group_bounds.emplace_back(begin, i);
        begin = i;
      }
    }
  }

  const std::size_t merges =
      detail::merge_grouped_segments(grouped, group_bounds, time_tol, freq_tol);
  segments_ = std::move(grouped);
  return merges;
}

}  // namespace easched
