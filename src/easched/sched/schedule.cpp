#include "easched/sched/schedule.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <utility>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/common/radix.hpp"

namespace easched {

namespace {

std::string describe(const Segment& s) {
  std::ostringstream os;
  os << "task " << s.task << " on core " << s.core << " [" << s.start << ", " << s.end << ") @ f="
     << s.frequency;
  return os.str();
}

void check_segment(const Segment& segment) {
  EASCHED_EXPECTS(segment.end > segment.start);
  EASCHED_EXPECTS(segment.frequency > 0.0);
  EASCHED_EXPECTS(segment.task >= 0);
  EASCHED_EXPECTS(segment.core >= 0);
}

}  // namespace

Schedule::Schedule(int core_count, std::vector<Segment> segments)
    : core_count_(core_count), segments_(std::move(segments)) {
  for (const Segment& s : segments_) check_segment(s);
}

void Schedule::add(Segment segment) {
  check_segment(segment);
  segments_.push_back(segment);
}

std::vector<Segment> Schedule::segments_of_task(TaskId task) const {
  std::vector<Segment> out;
  for (const Segment& s : segments_) {
    if (s.task == task) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  return out;
}

std::vector<Segment> Schedule::segments_on_core(CoreId core) const {
  std::vector<Segment> out;
  for (const Segment& s : segments_) {
    if (s.core == core) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  return out;
}

double Schedule::execution_time(TaskId task) const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    if (s.task == task) total += s.duration();
  }
  return total;
}

double Schedule::completed_work(TaskId task) const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    if (s.task == task) total += s.work();
  }
  return total;
}

double Schedule::energy(const PowerModel& power) const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    total += power.energy_for_duration(s.duration(), s.frequency);
  }
  return total;
}

ValidationReport Schedule::validate(const TaskSet& tasks, double work_tol,
                                    double time_tol) const {
  ValidationReport report;

  // Segment sanity + window containment, accumulating per-task completed
  // work in the same pass (the per-task completed_work() loop over the full
  // segment list is O(T·S) — admission validates after every plan, so this
  // function stays one sort plus linear scans).
  std::vector<double> done(tasks.size(), 0.0);
  for (const Segment& s : segments_) {
    if (s.task < 0 || static_cast<std::size_t>(s.task) >= tasks.size()) {
      report.fail("segment references unknown " + describe(s));
      continue;
    }
    if (s.core < 0 || s.core >= core_count_) {
      report.fail("segment uses core outside [0, m): " + describe(s));
    }
    const Task& t = tasks.at(s.task);
    if (!geq_tol(s.start, t.release, time_tol)) {
      report.fail("segment starts before release: " + describe(s));
    }
    if (!leq_tol(s.end, t.deadline, time_tol)) {
      report.fail("segment ends after deadline: " + describe(s));
    }
    done[static_cast<std::size_t>(s.task)] += s.work();
  }

  // One start-ordered index over all segments replaces the per-core and
  // per-task sorted copies: scanning in that order, the previously seen
  // segment on the same core (resp. of the same task) is exactly the
  // start-sorted predecessor the adjacent-pair overlap check compares
  // against. The order comes from a stable radix sort on the
  // order-preserving key of each start time (equal starts keep ascending
  // index). Failures are bucketed and emitted grouped by core then by
  // task, matching the historical report order (the buckets only exist on
  // the failure path; a valid schedule allocates nothing but the index).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
  order.reserve(segments_.size());
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    order.push_back({ordered_double_key(segments_[i].start), static_cast<std::uint32_t>(i)});
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> swap;
  radix_sort_keys(order, swap);
  std::vector<const Segment*> last_on_core(static_cast<std::size_t>(std::max(core_count_, 0)),
                                           nullptr);
  std::vector<const Segment*> last_of_task(tasks.size(), nullptr);
  std::vector<std::pair<CoreId, std::string>> core_failures;
  std::vector<std::pair<TaskId, std::string>> task_failures;
  for (const auto& [key, index] : order) {
    const Segment& s = segments_[index];
    if (s.core >= 0 && s.core < core_count_) {
      const Segment*& last = last_on_core[static_cast<std::size_t>(s.core)];
      if (last != nullptr && s.start < last->end - time_tol) {
        core_failures.emplace_back(s.core,
                                   "core overlap: " + describe(*last) + " vs " + describe(s));
      }
      last = &s;
    }
    if (s.task >= 0 && static_cast<std::size_t>(s.task) < tasks.size()) {
      const Segment*& last = last_of_task[static_cast<std::size_t>(s.task)];
      if (last != nullptr && s.start < last->end - time_tol) {
        task_failures.emplace_back(s.task,
                                   "task self-overlap: " + describe(*last) + " vs " + describe(s));
      }
      last = &s;
    }
  }
  std::stable_sort(core_failures.begin(), core_failures.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [core, message] : core_failures) report.fail(std::move(message));
  std::stable_sort(task_failures.begin(), task_failures.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [task, message] : task_failures) report.fail(std::move(message));

  // Execution requirements are met.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double required = tasks[i].work;
    if (done[i] < required * (1.0 - work_tol) - work_tol) {
      std::ostringstream os;
      os << "task " << i << " completes " << done[i] << " of required " << required;
      report.fail(os.str());
    }
  }
  return report;
}

std::size_t detail::merge_grouped_segments(
    std::vector<Segment>& grouped,
    const std::vector<std::pair<std::size_t, std::size_t>>& bounds, double time_tol,
    double freq_tol) {
  // The groups tile `grouped` in ascending order, so survivors compact into
  // a prefix with one in-place write cursor — no second buffer the size of
  // the segment list. (The write cursor never overtakes the read index, and
  // sorting group g touches only [g.first, g.second), which lies at or past
  // the cursor.)
  std::size_t merges = 0;
  std::size_t w = 0;
  for (const auto& [group_begin, group_end] : bounds) {
    std::sort(grouped.begin() + static_cast<std::ptrdiff_t>(group_begin),
              grouped.begin() + static_cast<std::ptrdiff_t>(group_end),
              [](const Segment& a, const Segment& b) { return a.start < b.start; });
    const std::size_t group_w = w;
    for (std::size_t i = group_begin; i < group_end; ++i) {
      const Segment s = grouped[i];
      if (w > group_w) {
        Segment& last = grouped[w - 1];
        if (last.task == s.task && last.core == s.core &&
            almost_equal(last.end, s.start, time_tol, 0.0) &&
            almost_equal(last.frequency, s.frequency, freq_tol, freq_tol)) {
          last.end = s.end;
          ++merges;
          continue;
        }
      }
      grouped[w++] = s;
    }
  }
  grouped.resize(w);
  return merges;
}

std::size_t Schedule::coalesce(double time_tol, double freq_tol) {
  if (segments_.empty()) return 0;

  // Group by (task, core) with keys ascending and the original segment order
  // preserved inside each group. A stable counting sort does this in two
  // linear passes over a dense key space; schedules with huge sparse task
  // ids fall back to a stable comparison sort. Both orders match the
  // (task, core)-keyed map this function historically used, so the merged
  // output is unchanged segment for segment.
  TaskId max_task = 0;
  CoreId max_core = 0;
  for (const Segment& s : segments_) {
    max_task = std::max(max_task, s.task);
    max_core = std::max(max_core, s.core);
  }
  const std::size_t stride = static_cast<std::size_t>(max_core) + 1;
  const std::size_t key_count = (static_cast<std::size_t>(max_task) + 1) * stride;
  const auto key_of = [stride](const Segment& s) {
    return static_cast<std::size_t>(s.task) * stride + static_cast<std::size_t>(s.core);
  };

  std::vector<Segment> grouped;
  std::vector<std::pair<std::size_t, std::size_t>> group_bounds;
  if (key_count <= 2 * segments_.size() + 1024) {
    std::vector<std::size_t> offsets(key_count + 1, 0);
    for (const Segment& s : segments_) ++offsets[key_of(s) + 1];
    for (std::size_t k = 0; k < key_count; ++k) offsets[k + 1] += offsets[k];
    grouped.resize(segments_.size());
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Segment& s : segments_) grouped[cursor[key_of(s)]++] = s;
    group_bounds.reserve(key_count);
    for (std::size_t k = 0; k < key_count; ++k) {
      if (offsets[k + 1] > offsets[k]) group_bounds.emplace_back(offsets[k], offsets[k + 1]);
    }
  } else {
    std::vector<std::size_t> index(segments_.size());
    std::iota(index.begin(), index.end(), std::size_t{0});
    std::stable_sort(index.begin(), index.end(), [&](std::size_t a, std::size_t b) {
      return key_of(segments_[a]) < key_of(segments_[b]);
    });
    grouped.reserve(segments_.size());
    for (const std::size_t i : index) grouped.push_back(segments_[i]);
    std::size_t begin = 0;
    for (std::size_t i = 1; i <= grouped.size(); ++i) {
      if (i == grouped.size() || key_of(grouped[i]) != key_of(grouped[begin])) {
        group_bounds.emplace_back(begin, i);
        begin = i;
      }
    }
  }

  const std::size_t merges =
      detail::merge_grouped_segments(grouped, group_bounds, time_tol, freq_tol);
  segments_ = std::move(grouped);
  return merges;
}

}  // namespace easched
