#include "easched/sched/discrete_plan.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/sched/discrete_adapter.hpp"
#include "easched/sched/packing.hpp"

namespace easched {

std::size_t DiscretePlan::miss_count() const {
  return static_cast<std::size_t>(std::count(missed.begin(), missed.end(), true));
}

DiscretePlan plan_on_ladder(const TaskSet& tasks, const SubintervalDecomposition& subs,
                            int cores, const MethodResult& method,
                            const DiscreteLevels& levels) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(method.total_available.size() == tasks.size());

  DiscretePlan plan;
  plan.schedule.set_core_count(cores);
  plan.level.resize(tasks.size());
  plan.missed.assign(tasks.size(), false);

  // Per task: operating point and the execution time to distribute.
  std::vector<double> used_time(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double budget = method.total_available[i];
    EASCHED_ASSERT(budget > 0.0);
    if (const auto level = best_feasible_level(levels, tasks[i].work, budget)) {
      plan.level[i] = level->frequency;
      used_time[i] = tasks[i].work / level->frequency;
    } else {
      // Deadline miss: run flat-out for the whole availability.
      plan.missed[i] = true;
      plan.level[i] = levels.max_frequency();
      used_time[i] = budget;
    }
  }

  // Distribute each task's quantized execution time proportionally over its
  // availability and pack every subinterval (Algorithm 1). Capacity holds
  // because used_time <= availability.
  for (std::size_t j = 0; j < subs.size(); ++j) {
    std::vector<PackItem> items;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const double avail = method.availability(i, j);
      if (avail <= 0.0 || used_time[i] <= 0.0) continue;
      const double scale = std::min(1.0, used_time[i] / method.total_available[i]);
      const double time = std::min(avail * scale, subs[j].length());
      if (time <= 1e-12) continue;
      items.push_back({static_cast<TaskId>(i), time, plan.level[i]});
    }
    if (!items.empty()) pack_subinterval(subs[j].begin, subs[j].end, cores, items,
                                         plan.schedule);
  }
  plan.schedule.coalesce();

  for (const Segment& s : plan.schedule.segments()) {
    plan.energy += levels.power_at(s.frequency) * s.duration();
  }
  return plan;
}

}  // namespace easched
