#pragma once

/// \file fallback.hpp
/// \brief Deadline-budgeted planning with a deterministic fallback chain.
///
/// The paper's own argument — the subinterval heuristics are lightweight
/// *alternatives* to the exact convex program — becomes a runtime
/// degradation policy here. One planning request walks a fixed chain of
/// rungs, cheapest-rescue last:
///
///     exact (budgeted FISTA)  →  F2 (DER)  →  F1 (even)  →  reject
///
/// Each rung's schedule must pass `Schedule::validate` (and carry finite
/// energy) before it is served; a rung that times out, hits its iteration
/// cap, breaks down numerically, throws, or produces an invalid plan is
/// *recorded* and the chain escalates. An invalid plan is never returned —
/// the chain either serves a validated schedule or rejects with the
/// accumulated reasons. The walk is deterministic: rung order is fixed, and
/// every failure is a structured `RungFailure`, so a seeded fault plan
/// reproduces the same `FallbackOutcome` on every run and at any thread-pool
/// size (the kernels under each rung keep the `Exec` determinism contract).
///
/// The exact rung is optional (`FallbackOptions::try_exact`): the service
/// keeps F2 as its top rung by default — same plans as before this layer
/// existed — and turns the exact rung on when a caller asks for optimal
/// plans with a latency budget.

#include <string>
#include <string_view>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/plan_budget.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

struct Exec;

/// The rungs of the chain, in escalation order.
enum class PlanRung {
  kExact,  ///< budgeted convex solve (E^OPT)
  kDer,    ///< F2: DER-proportional allocation
  kEven,   ///< F1: even allocation
  kNone,   ///< nothing served (rejected)
};

/// Stable display name ("exact", "der", "even", "none").
std::string_view plan_rung_name(PlanRung rung);

/// Why a rung did not serve the request.
enum class RungFailure {
  kNone,                ///< the rung served
  kTimeout,             ///< budget wall clock expired mid-solve
  kIterationCap,        ///< solver exhausted iterations without converging
  kNumericalBreakdown,  ///< NaN/Inf iterate, failed factorization
  kStallInjected,       ///< fault injection forced a stall
  kInvalidPlan,         ///< produced schedule failed the validator
  kNonFiniteEnergy,     ///< energy was NaN/Inf (never serve it)
  kException,           ///< the rung threw (fault-injected job failure, ...)
};

/// Stable display name ("timeout", "invalid_plan", ...).
std::string_view rung_failure_name(RungFailure failure);

/// One rung's audit record.
struct RungAttempt {
  PlanRung rung = PlanRung::kNone;
  bool served = false;
  RungFailure failure = RungFailure::kNone;
  /// Human-readable detail (solver status, first validator violation, ...).
  std::string detail;
};

/// Which rung served (if any) and the full per-rung audit trail.
struct FallbackOutcome {
  PlanRung served = PlanRung::kNone;
  std::vector<RungAttempt> attempts;

  bool rejected() const { return served == PlanRung::kNone; }
  /// True when a rung below the chain's top one served.
  bool degraded() const;
  /// Aggregated reason string, e.g. "exact: timeout; der: invalid_plan".
  std::string reason() const;
};

/// Chain configuration.
struct FallbackOptions {
  /// Attempt the exact convex solve as the top rung. Off by default: the
  /// heuristic chain (F2 → F1) matches the pre-fallback planning output
  /// exactly when nothing fails.
  bool try_exact = false;
  /// Budget for the whole request. Only the exact rung consumes it
  /// cooperatively; the heuristic rungs are the cheap rescue and always run
  /// to completion (that is the point of falling back).
  PlanBudget budget{};
  /// Knobs for the exact rung (its `budget` field is overwritten with the
  /// chain's remaining budget).
  SolverOptions exact{};
  /// Entry point into the heuristic sub-chain (the brownout ladder's knob):
  /// `kDer` (default) runs F2 → F1; `kEven` skips straight to the cheapest
  /// rung. Values other than those two are treated as the default.
  PlanRung first_heuristic = PlanRung::kDer;
  /// Validator tolerance applied to every candidate schedule.
  double validate_tol = 1e-5;
};

/// What the chain served.
struct FallbackPlan {
  Schedule schedule;
  double energy = 0.0;
  FallbackOutcome outcome;
};

/// Walk the chain for `tasks` on `cores`. Never throws for rung-level
/// failures (they land in the outcome); contract violations on caller
/// inputs (`tasks` empty, `cores <= 0`) still throw.
FallbackPlan plan_with_fallback(const TaskSet& tasks, int cores, const PowerModel& power,
                                const FallbackOptions& options = {});

/// Parallel overload: kernels under each rung fan out over `exec`;
/// bit-identical to the serial overload at any pool size.
FallbackPlan plan_with_fallback(const TaskSet& tasks, int cores, const PowerModel& power,
                                const FallbackOptions& options, const Exec& exec);

}  // namespace easched
