#include "easched/sched/feasibility.hpp"

#include <algorithm>
#include <sstream>

#include "easched/common/contracts.hpp"
#include "easched/solver/maxflow.hpp"

namespace easched {

namespace {

/// Relative saturation tolerance for the flow test.
constexpr double kFlowTol = 1e-9;

void add_necessary_condition_violations(const TaskSet& tasks,
                                        const SubintervalDecomposition& subs, int cores,
                                        double f_max, FeasibilityReport& report) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].intensity() > f_max * (1.0 + kFlowTol)) {
      std::ostringstream os;
      os << "task " << i << " needs frequency " << tasks[i].intensity() << " > f_max " << f_max
         << " even running alone";
      report.violated_conditions.push_back(os.str());
    }
  }
  // Demand-density over every boundary-pair window.
  const auto& bounds = subs.boundaries();
  for (std::size_t a = 0; a < bounds.size(); ++a) {
    for (std::size_t b = a + 1; b < bounds.size(); ++b) {
      double work = 0.0;
      for (const Task& t : tasks) {
        if (t.release >= bounds[a] && t.deadline <= bounds[b]) work += t.work;
      }
      const double capacity = static_cast<double>(cores) * f_max * (bounds[b] - bounds[a]);
      if (work > capacity * (1.0 + kFlowTol)) {
        std::ostringstream os;
        os << "window [" << bounds[a] << ", " << bounds[b] << "] demands " << work
           << " cycles but offers only " << capacity;
        report.violated_conditions.push_back(os.str());
      }
    }
  }
}

}  // namespace

FeasibilityReport check_feasibility(const TaskSet& tasks, int cores, double f_max) {
  const SubintervalDecomposition subs(tasks);
  return check_feasibility(tasks, subs, cores, f_max);
}

FeasibilityReport check_feasibility(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                    int cores, double f_max) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(f_max > 0.0);

  FeasibilityReport report;
  add_necessary_condition_violations(tasks, subs, cores, f_max, report);

  // Flow network: 0 = source, 1..n = tasks, n+1..n+N = subintervals, last =
  // sink.
  const std::size_t n = tasks.size();
  const std::size_t subinterval_count = subs.size();
  const std::size_t sink = 1 + n + subinterval_count;
  MaxFlowNetwork net(sink + 1);

  for (std::size_t i = 0; i < n; ++i) {
    const double exec_time = tasks[i].work / f_max;
    report.demand += exec_time;
    net.add_edge(0, 1 + i, exec_time);
  }
  for (std::size_t j = 0; j < subinterval_count; ++j) {
    net.add_edge(1 + n + j, sink, static_cast<double>(cores) * subs[j].length());
    for (const TaskId i : subs[j].overlapping) {
      net.add_edge(1 + static_cast<std::size_t>(i), 1 + n + j, subs[j].length());
    }
  }

  report.routable = net.max_flow(0, sink);
  report.feasible = report.routable >= report.demand * (1.0 - kFlowTol) - kFlowTol;
  return report;
}

double minimal_feasible_frequency(const TaskSet& tasks, int cores, double rel_tol) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(rel_tol > 0.0);

  const SubintervalDecomposition subs(tasks);

  // Lower bound from the necessary conditions.
  double lo = tasks.max_intensity();
  const auto& bounds = subs.boundaries();
  for (std::size_t a = 0; a < bounds.size(); ++a) {
    for (std::size_t b = a + 1; b < bounds.size(); ++b) {
      double work = 0.0;
      for (const Task& t : tasks) {
        if (t.release >= bounds[a] && t.deadline <= bounds[b]) work += t.work;
      }
      lo = std::max(lo, work / (static_cast<double>(cores) * (bounds[b] - bounds[a])));
    }
  }
  EASCHED_ASSERT(lo > 0.0);

  // Doubling search for a feasible upper bound (termination: exec times
  // shrink to arbitrarily small fractions of every window).
  double hi = lo;
  for (int expand = 0; expand < 64; ++expand) {
    if (check_feasibility(tasks, subs, cores, hi).feasible) break;
    hi *= 2.0;
  }
  EASCHED_ASSERT(check_feasibility(tasks, subs, cores, hi).feasible);

  if (check_feasibility(tasks, subs, cores, lo).feasible) return lo;
  while (hi - lo > rel_tol * hi) {
    const double mid = 0.5 * (lo + hi);
    if (check_feasibility(tasks, subs, cores, mid).feasible) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace easched
