#include "easched/sched/incremental.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/obs/trace.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/sched/packing.hpp"
#include "easched/sched/pipeline.hpp"

namespace easched {

// ---------------------------------------------------------------------------
// Why the splice is exact (the invariants the code below maintains)
//
// A single-task delta changes the boundary multiset by at most the task's
// two values. Let [t_lo, t_hi] bracket the change: t_lo is the largest
// boundary shared by the old and new arrays at or below the task's release,
// t_hi the smallest shared one at or above its deadline. Then:
//
//  *  every new column outside [t_lo, t_hi] has the same geometry and the
//     same overlap set as its old counterpart (columns left of t_lo keep
//     their index, columns right of t_hi shift uniformly), so the column
//     rationing — a pure function of geometry, membership and the per-task
//     ideal-case values — reproduces its old values bit for bit;
//  *  a task none of whose columns lie in [t_lo, t_hi] (its window ends at
//     or before t_lo, or starts at or after t_hi — the shared-boundary
//     choice of t_lo/t_hi forces one of the two) keeps its availability row,
//     row sum, refined frequency and scale unchanged, so its schedule
//     segments outside the repack window are reproduced exactly;
//  *  the dirty span D1 — the window's columns plus the full live ranges of
//     every task overlapping them — therefore covers every column whose
//     packed segments can differ, and recomputing exactly those columns
//     (rows of window tasks included) plus re-running the O(n) refinement
//     yields the from-scratch state.
//
// The schedule splice drops the old segments inside the repack window,
// repacks the window's columns from the fresh state, and re-runs the
// coalescing fold once over old-prefix ++ repacked ++ old-suffix per
// (task, core) group. The fold is a left fold whose merge predicate sees
// only the previous survivor's (end, frequency) and the next segment's
// (start, frequency); final frequencies are per-task constants, so
// refolding a group's already-folded pieces reproduces the from-scratch
// fold exactly — provided no *old* merged segment straddles a cut. The
// expansion loop below moves the cuts outward (always onto old boundary
// values, which no raw segment crosses) until none does.
// ---------------------------------------------------------------------------

DeltaPlanner::DeltaPlanner(PowerModel power, DeltaOptions options)
    : power_(std::move(power)), options_(options) {
  EASCHED_EXPECTS(options_.cores > 0);
  EASCHED_EXPECTS(options_.merge_tol >= 0.0);
}

void DeltaPlanner::invalidate() { has_state_ = false; }

void DeltaPlanner::reserve(std::size_t tasks, std::size_t boundaries, std::size_t overlap_mass) {
  reserve_tasks_ = tasks;
  reserve_bounds_ = boundaries;
  reserve_mass_ = overlap_mass;
  if (subs_) subs_->reserve(tasks, boundaries, overlap_mass);
}

Availability DeltaPlanner::refined_allocation() const {
  EASCHED_EXPECTS(has_state_);
  Availability refined(task_set_, *subs_);
  for (std::size_t i = 0; i < task_set_.size(); ++i) {
    const std::span<const double> src = avail_.row(i);
    const std::span<double> dst = refined.row_values(i);
    EASCHED_ASSERT(src.size() == dst.size());
    for (std::size_t k = 0; k < src.size(); ++k) dst[k] = src[k] * task_scale_[i];
  }
  return refined;
}

bool DeltaPlanner::insertable(double value) const {
  const auto it = std::lower_bound(bound_values_.begin(), bound_values_.end(), value);
  if (it != bound_values_.begin() && value - *(it - 1) <= options_.merge_tol) return false;
  if (it != bound_values_.end() && *it - value <= options_.merge_tol) return false;
  return true;
}

void DeltaPlanner::insert_boundary(double value) {
  const auto it = std::lower_bound(bound_values_.begin(), bound_values_.end(), value);
  if (it != bound_values_.end() && *it == value) {
    ++bound_counts_[static_cast<std::size_t>(it - bound_values_.begin())];
    return;
  }
  const std::size_t pos = static_cast<std::size_t>(it - bound_values_.begin());
  bound_values_.insert(it, value);
  bound_counts_.insert(bound_counts_.begin() + static_cast<std::ptrdiff_t>(pos), 1);
}

bool DeltaPlanner::erase_boundary(double value) {
  const auto it = std::lower_bound(bound_values_.begin(), bound_values_.end(), value);
  EASCHED_ASSERT(it != bound_values_.end() && *it == value);
  const std::size_t pos = static_cast<std::size_t>(it - bound_values_.begin());
  if (--bound_counts_[pos] > 0) return false;
  bound_values_.erase(it);
  bound_counts_.erase(bound_counts_.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

void DeltaPlanner::full_rebuild(const TaskSet& live, const Exec& exec) {
  has_state_ = false;  // stays down until every piece of state is consistent
  tasks_.assign(live.begin(), live.end());
  task_set_ = TaskSet(tasks_);

  // Rebuild the boundary multiset: sorted distinct values with counts. The
  // set is *clean* when no two distinct values sit within the merge
  // tolerance — exactly the condition under which the decomposition
  // constructor's sort+merge keeps every distinct value, so the array here
  // matches the constructor's output bit for bit and future deltas may
  // splice it. An unclean set pins the planner to full rebuilds (the splice
  // cannot reproduce the merge's keep-first-representative choice).
  std::vector<double> all;
  all.reserve(2 * tasks_.size());
  for (const Task& t : tasks_) {
    all.push_back(t.release);
    all.push_back(t.deadline);
  }
  std::sort(all.begin(), all.end());
  bound_values_.clear();
  bound_counts_.clear();
  clean_ = true;
  for (const double v : all) {
    if (!bound_values_.empty() && v == bound_values_.back()) {
      ++bound_counts_.back();
      continue;
    }
    if (!bound_values_.empty() && v - bound_values_.back() <= options_.merge_tol) clean_ = false;
    bound_values_.push_back(v);
    bound_counts_.push_back(1);
  }

  if (clean_ && subs_) {
    subs_->assign(task_set_, bound_values_, exec);
  } else {
    subs_.emplace(task_set_, options_.merge_tol, exec);
    if (reserve_tasks_ != 0 || reserve_bounds_ != 0 || reserve_mass_ != 0) {
      subs_->reserve(reserve_tasks_, reserve_bounds_, reserve_mass_);
    }
  }
  ideal_.emplace(task_set_, power_);

  MethodResult result = schedule_with_method(task_set_, *subs_, options_.cores, power_, *ideal_,
                                             options_.method, exec);
  avail_ = std::move(result.availability);
  schedule_ = std::move(result.final_schedule);
  refine(exec);  // recomputes what `result` carried, from identical inputs
  EASCHED_ASSERT(final_energy_ == result.final_energy);
  has_state_ = true;
}

void DeltaPlanner::refine(const Exec& exec) {
  // The F2 refinement (equations (22)-(23)), expression for expression the
  // loop in `schedule_with_method`: per-task slots filled independently,
  // then one serial ascending-index energy fold.
  const std::size_t n = task_set_.size();
  total_available_.resize(n);
  final_frequency_.resize(n);
  task_scale_.resize(n);
  task_energy_.resize(n);
  exec.loop(n, [&](std::size_t i) {
    const double a_total = avail_.row_sum(i);
    EASCHED_ASSERT(a_total > 0.0);
    total_available_[i] = a_total;
    const double f = power_.optimal_frequency(task_set_[i].work, a_total);
    final_frequency_[i] = f;
    task_energy_[i] = power_.energy_for_work(task_set_[i].work, f);
    const double used = task_set_[i].work / f;
    EASCHED_ASSERT(leq_tol(used, a_total, 1e-9 * a_total));
    task_scale_[i] = std::min(1.0, used / a_total);
  });
  final_energy_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) final_energy_ += task_energy_[i];
}

void DeltaPlanner::rebuild_from_dirty(std::size_t d1_first, std::size_t d1_count,
                                      const std::vector<char>& in_dirty_set, TaskId removed_old,
                                      const Exec& exec, DeltaOutcome& out) {
  // An empty dirty span happens only when a removed task lay entirely
  // outside the surviving horizon: no surviving column changes geometry or
  // membership, so the whole rebuild reduces to re-keying the rows and
  // dropping the removed task's schedule groups.
  const std::size_t n = task_set_.size();
  const std::size_t columns = subs_->size();
  EASCHED_ASSERT(d1_count == 0 || d1_first + d1_count <= columns);
  EASCHED_ASSERT(d1_count > 0 || removed_old >= 0);
  EASCHED_ASSERT(in_dirty_set.size() == n);
  out.dirty_columns += d1_count;

  // --- Availability: copy clean rows, recompute dirty columns, refold sums.
  Availability fresh(task_set_, *subs_);
  exec.loop(n, [&](std::size_t i) {
    if (in_dirty_set[i]) return;  // fully covered by the dirty-column pass
    const std::size_t old_i =
        removed_old >= 0 && i >= static_cast<std::size_t>(removed_old) ? i + 1 : i;
    const std::span<const double> src = avail_.row(old_i);
    const std::span<double> dst = fresh.row_values(i);
    EASCHED_ASSERT(src.size() == dst.size());
    std::copy(src.begin(), src.end(), dst.begin());
  });
  exec.loop(d1_count, [&](std::size_t k) {
    // The allocator's per-column rationing, verbatim (allocation.cpp): the
    // recomputed cells must match a from-scratch fill bit for bit.
    const std::size_t j = d1_first + k;
    const Subinterval& si = (*subs_)[j];
    if (si.overlapping.empty()) return;
    if (!si.heavy(options_.cores)) {
      for (const TaskId i : si.overlapping) {
        fresh.set_in_column(static_cast<std::size_t>(i), j, si.length());
      }
      return;
    }
    thread_local std::vector<double> ders;
    thread_local std::vector<double> ration;
    if (options_.method == AllocationMethod::kEven) {
      const double share =
          std::min(si.length(), static_cast<double>(options_.cores) * si.length() /
                                    static_cast<double>(si.overlapping.size()));
      ration.assign(si.overlapping.size(), share);
    } else {
      ders.clear();
      for (const TaskId i : si.overlapping) {
        ders.push_back(ideal_->execution_time_in(i, si.begin, si.end) * ideal_->frequency(i));
      }
      ration = der_ration(ders, options_.cores, si.length());
    }
    for (std::size_t m = 0; m < si.overlapping.size(); ++m) {
      fresh.set_in_column(static_cast<std::size_t>(si.overlapping[m]), j, ration[m]);
    }
  });
  fresh.rebuild_sums(*subs_, exec);
  avail_ = std::move(fresh);

  // --- Refinement: O(n) closed form; recomputing every task (not just the
  // dirty ones) costs microseconds and is trivially from-scratch-identical.
  refine(exec);

  // --- Schedule splice. Index the old schedule's (task, core) groups.
  const std::size_t stride = static_cast<std::size_t>(options_.cores) + 1;
  const std::vector<Segment>& osegs = schedule_.segments();
  struct OldGroup {
    std::size_t key = 0;  ///< new-id group key, `task · (cores+1) + core`
    TaskId new_task = 0;
    std::size_t begin = 0, end = 0;      ///< run in `osegs`
    std::size_t pre_end = 0;             ///< prefix = [begin, pre_end)
    std::size_t suf_begin = 0;           ///< suffix = [suf_begin, end)
  };
  std::vector<OldGroup> old_groups;
  for (std::size_t b = 0; b < osegs.size();) {
    std::size_t e = b + 1;
    while (e < osegs.size() && osegs[e].task == osegs[b].task && osegs[e].core == osegs[b].core) {
      ++e;
    }
    const TaskId old_task = osegs[b].task;
    if (old_task != removed_old) {
      const TaskId new_task =
          removed_old >= 0 && old_task > removed_old ? old_task - 1 : old_task;
      OldGroup g;
      g.key = static_cast<std::size_t>(new_task) * stride + static_cast<std::size_t>(osegs[b].core);
      g.new_task = new_task;
      g.begin = b;
      g.end = e;
      EASCHED_ASSERT(old_groups.empty() || old_groups.back().key < g.key);
      old_groups.push_back(g);
    }
    b = e;
  }

  // Expand the repack window until no surviving old segment straddles a
  // cut. Cuts only move outward onto boundary values shared with the old
  // array, which no old raw segment crosses, so the loop strictly
  // progresses; past the cap the whole horizon is repacked instead (exact
  // either way — expansion only bounds the work).
  const std::vector<double>& bv = bound_values_;
  const bool have_window = d1_count > 0;
  std::size_t jlo = d1_first;
  std::size_t jhi = have_window ? d1_first + d1_count - 1 : d1_first;
  const auto start_below = [](const Segment& s, double v) { return s.start < v; };
  for (std::size_t steps = 0; have_window;) {
    const double t_lo = bv[jlo];
    const double t_hi = bv[jhi + 1];
    bool moved = false;
    for (const OldGroup& g : old_groups) {
      // Only a group whose span strictly contains a cut can straddle it.
      if (osegs[g.begin].start >= t_hi || osegs[g.end - 1].end <= t_lo) continue;
      const auto first = osegs.begin() + static_cast<std::ptrdiff_t>(g.begin);
      const auto last = osegs.begin() + static_cast<std::ptrdiff_t>(g.end);
      // Segments in a group are disjoint and start-sorted, so at most one
      // contains a cut in its interior: the last one starting below it.
      auto it = std::lower_bound(first, last, t_lo, start_below);
      if (it != first && (it - 1)->end > t_lo) {
        const auto b = std::upper_bound(bv.begin(), bv.end(), (it - 1)->start);
        EASCHED_ASSERT(b != bv.begin());
        jlo = static_cast<std::size_t>(b - bv.begin()) - 1;
        moved = true;
        break;
      }
      it = std::lower_bound(first, last, t_hi, start_below);
      if (it != first && (it - 1)->end > t_hi) {
        const auto b = std::lower_bound(bv.begin(), bv.end(), (it - 1)->end);
        EASCHED_ASSERT(b != bv.end());
        jhi = static_cast<std::size_t>(b - bv.begin()) - 1;
        moved = true;
        break;
      }
    }
    if (!moved) break;
    if (++steps > options_.max_cut_expansion) {
      jlo = 0;
      jhi = columns - 1;
      break;
    }
  }
  out.repacked_columns += have_window ? jhi - jlo + 1 : 0;
  // An empty window degenerates to "keep everything": both cuts at +inf put
  // every surviving segment in the prefix and the repack produces nothing.
  const double t_lo = have_window ? bv[jlo] : std::numeric_limits<double>::infinity();
  const double t_hi = have_window ? bv[jhi + 1] : std::numeric_limits<double>::infinity();

  // Classify each group: a start-sorted disjoint run splits into a prefix
  // (ends at or before t_lo), a middle (dropped — the repack regenerates
  // it) and a suffix (starts at or after t_hi). Expansion guarantees the
  // middle lies fully inside the window.
  std::size_t kept = 0;
  for (OldGroup& g : old_groups) {
    std::size_t p = g.begin;
    while (p < g.end && osegs[p].end <= t_lo) ++p;
    g.pre_end = p;
    std::size_t s = g.end;
    while (s > p && osegs[s - 1].start >= t_hi) --s;
    g.suf_begin = s;
    for (std::size_t q = p; q < s; ++q) {
      EASCHED_ASSERT(osegs[q].start >= t_lo && osegs[q].end <= t_hi);
    }
    kept += (g.pre_end - g.begin) + (g.end - g.suf_begin);
  }

  // Repack the window columns from the fresh state — the same generator the
  // pipeline feeds the packer, restricted to [jlo, jhi].
  const auto window_items = [&](std::size_t j) -> std::span<const PackItem> {
    if (j < jlo || j > jhi) return {};
    thread_local std::vector<PackItem> items;
    items.clear();
    const Subinterval& si = (*subs_)[j];
    for (const TaskId id : si.overlapping) {
      const auto i = static_cast<std::size_t>(id);
      const double budget = avail_(i, j);
      if (budget <= 0.0) continue;
      const double time = std::min(budget * task_scale_[i], si.length());
      if (!(time > 0.0)) continue;
      items.push_back({id, time, final_frequency_[i]});
    }
    return items;
  };
  const Schedule middle =
      have_window ? pack_subintervals_coalesced(*subs_, options_.cores, window_items,
                                                static_cast<TaskId>(n) - 1, exec)
                  : Schedule(options_.cores, std::vector<Segment>{});
  const std::vector<Segment>& msegs = middle.segments();
  struct MidGroup {
    std::size_t key = 0;
    std::size_t begin = 0, end = 0;
  };
  std::vector<MidGroup> mid_groups;
  for (std::size_t b = 0; b < msegs.size();) {
    std::size_t e = b + 1;
    while (e < msegs.size() && msegs[e].task == msegs[b].task && msegs[e].core == msegs[b].core) {
      ++e;
    }
    mid_groups.push_back({static_cast<std::size_t>(msegs[b].task) * stride +
                              static_cast<std::size_t>(msegs[b].core),
                          b, e});
    b = e;
  }

  // Two-stream merge by group key (both streams ascending; the old→new id
  // map is monotone): per key, prefix ++ repacked ++ suffix is start-sorted
  // by construction (group segments are disjoint, so the coalescing fold's
  // per-group sort would be an identity), and the fold runs fused with the
  // splice instead of as a second pass. Groups the delta did not cut and
  // did not repack are still maximally coalesced from the previous fold
  // (same tolerances, a left fold is idempotent), so they bulk-copy.
  std::vector<Segment> spliced;
  spliced.reserve(kept + msegs.size());
  constexpr std::size_t kNoKey = std::numeric_limits<std::size_t>::max();
  const auto append_merged = [&](Segment s, std::size_t group_begin) {
    // merge_grouped_segments' predicate, verbatim; task/core are equal
    // within a group by construction.
    if (spliced.size() > group_begin) {
      Segment& last = spliced.back();
      if (almost_equal(last.end, s.start, 1e-9, 0.0) &&
          almost_equal(last.frequency, s.frequency, 1e-9, 1e-9)) {
        last.end = s.end;
        return;
      }
    }
    spliced.push_back(s);
  };
  std::size_t oi = 0;
  std::size_t mi = 0;
  while (oi < old_groups.size() || mi < mid_groups.size()) {
    const std::size_t ko = oi < old_groups.size() ? old_groups[oi].key : kNoKey;
    const std::size_t km = mi < mid_groups.size() ? mid_groups[mi].key : kNoKey;
    const std::size_t key = std::min(ko, km);
    const std::size_t group_begin = spliced.size();
    const bool cut = ko == key && old_groups[oi].pre_end != old_groups[oi].suf_begin;
    if (km != key && !cut) {
      // Untouched old run: nothing dropped, nothing repacked — splice it
      // back wholesale (re-keying on removal).
      const OldGroup& g = old_groups[oi++];
      if (g.new_task == osegs[g.begin].task) {
        spliced.insert(spliced.end(), osegs.begin() + static_cast<std::ptrdiff_t>(g.begin),
                       osegs.begin() + static_cast<std::ptrdiff_t>(g.end));
      } else {
        for (std::size_t q = g.begin; q < g.end; ++q) {
          Segment s = osegs[q];
          s.task = g.new_task;
          spliced.push_back(s);
        }
      }
      continue;
    }
    if (ko == key) {
      const OldGroup& g = old_groups[oi];
      for (std::size_t q = g.begin; q < g.pre_end; ++q) {
        Segment s = osegs[q];
        s.task = g.new_task;
        append_merged(s, group_begin);
      }
    }
    if (km == key) {
      const MidGroup& g = mid_groups[mi];
      for (std::size_t q = g.begin; q < g.end; ++q) append_merged(msegs[q], group_begin);
    }
    if (ko == key) {
      const OldGroup& g = old_groups[oi];
      for (std::size_t q = g.suf_begin; q < g.end; ++q) {
        Segment s = osegs[q];
        s.task = g.new_task;
        append_merged(s, group_begin);
      }
      ++oi;
    }
    if (km == key) ++mi;
  }
  schedule_ = Schedule(options_.cores, std::move(spliced));
}

bool DeltaPlanner::apply_add(const Task& task, const Exec& exec, DeltaOutcome& out) {
  // Pre-check both boundary insertions before mutating anything: a value
  // landing within the merge tolerance of an existing (or the sibling new)
  // boundary would force a tolerance merge the splice cannot reproduce.
  const auto exact_present = [&](double v) {
    const auto it = std::lower_bound(bound_values_.begin(), bound_values_.end(), v);
    return it != bound_values_.end() && *it == v;
  };
  const bool r_new = !exact_present(task.release);
  const bool d_new = !exact_present(task.deadline);
  if ((r_new && !insertable(task.release)) || (d_new && !insertable(task.deadline))) return false;
  if (r_new && d_new && task.deadline - task.release <= options_.merge_tol) return false;

  insert_boundary(task.release);
  insert_boundary(task.deadline);
  tasks_.push_back(task);
  task_set_ = TaskSet(tasks_);
  subs_->assign(task_set_, bound_values_, exec);
  ideal_.emplace(task_set_, power_);

  // Dirty window: everything between the nearest boundaries shared with the
  // old array around [R, D]. A freshly inserted value's flanking columns
  // changed geometry (the insert split an old column), so the window steps
  // one boundary outward on that side.
  const std::vector<double>& bv = bound_values_;
  const auto idx_r = static_cast<std::size_t>(
      std::lower_bound(bv.begin(), bv.end(), task.release) - bv.begin());
  const auto idx_d = static_cast<std::size_t>(
      std::lower_bound(bv.begin(), bv.end(), task.deadline) - bv.begin());
  const std::size_t lo_idx = r_new && idx_r > 0 ? idx_r - 1 : idx_r;
  const std::size_t hi_idx = d_new && idx_d + 1 < bv.size() ? idx_d + 1 : idx_d;

  const std::size_t n = task_set_.size();
  std::vector<char> dirty(n, 0);
  std::size_t d1_first = lo_idx;
  std::size_t d1_last = hi_idx - 1;
  for (std::size_t j = lo_idx; j < hi_idx; ++j) {
    for (const TaskId m : (*subs_)[j].overlapping) {
      auto& flag = dirty[static_cast<std::size_t>(m)];
      if (flag) continue;
      flag = 1;
      const SubRange r = subs_->range_of(m);
      EASCHED_ASSERT(r.count > 0);
      d1_first = std::min(d1_first, r.first);
      d1_last = std::max(d1_last, r.first + r.count - 1);
    }
  }
  EASCHED_ASSERT(dirty[n - 1]);  // the appended task overlaps its own window

  rebuild_from_dirty(d1_first, d1_last - d1_first + 1, dirty, /*removed_old=*/-1, exec, out);
  ++out.ops;
  return true;
}

void DeltaPlanner::apply_remove(std::size_t index, const Exec& exec, DeltaOutcome& out) {
  EASCHED_ASSERT(index < tasks_.size() && tasks_.size() > 1);
  const Task task = tasks_[index];
  erase_boundary(task.release);
  erase_boundary(task.deadline);
  tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(index));
  task_set_ = TaskSet(tasks_);
  subs_->assign(task_set_, bound_values_, exec);
  ideal_.emplace(task_set_, power_);

  // Dirty window: the nearest *surviving* boundaries bracketing [R, D]. A
  // vanished value merged its two flanking columns, which the bracketing
  // absorbs; a vanished horizon extreme clamps to the new horizon edge.
  const std::vector<double>& bv = bound_values_;
  const auto lo_it = std::upper_bound(bv.begin(), bv.end(), task.release);
  const std::size_t lo_idx =
      lo_it == bv.begin() ? 0 : static_cast<std::size_t>(lo_it - bv.begin()) - 1;
  const auto hi_it = std::lower_bound(bv.begin(), bv.end(), task.deadline);
  const std::size_t hi_idx =
      hi_it == bv.end() ? bv.size() - 1 : static_cast<std::size_t>(hi_it - bv.begin());

  const std::size_t n = task_set_.size();
  if (lo_idx >= hi_idx) {
    // The removed task lay entirely beyond (or before) the surviving
    // horizon: no surviving column changes, the dirty window is empty.
    rebuild_from_dirty(0, 0, std::vector<char>(n, 0), static_cast<TaskId>(index), exec, out);
    ++out.ops;
    return;
  }
  std::vector<char> dirty(n, 0);
  std::size_t d1_first = lo_idx;
  std::size_t d1_last = hi_idx - 1;
  for (std::size_t j = lo_idx; j < hi_idx; ++j) {
    for (const TaskId m : (*subs_)[j].overlapping) {
      auto& flag = dirty[static_cast<std::size_t>(m)];
      if (flag) continue;
      flag = 1;
      const SubRange r = subs_->range_of(m);
      EASCHED_ASSERT(r.count > 0);
      d1_first = std::min(d1_first, r.first);
      d1_last = std::max(d1_last, r.first + r.count - 1);
    }
  }

  rebuild_from_dirty(d1_first, d1_last - d1_first + 1, dirty, static_cast<TaskId>(index), exec, out);
  ++out.ops;
}

DeltaPlan DeltaPlanner::plan_to(const TaskSet& live, const Exec& exec, DeltaOutcome* outcome) {
  EASCHED_EXPECTS_MSG(!live.empty(), "delta planner needs a non-empty task set");
  DeltaOutcome scratch;
  DeltaOutcome& out = outcome != nullptr ? *outcome : scratch;
  out = DeltaOutcome{};

  obs::Span span("kernel.delta_plan");
  span.arg("tasks", static_cast<double>(live.size()));

  try {
    if (!has_state_) {
      out.decline_reason = "no cached plan";
      full_rebuild(live, exec);
    } else {
      // Greedy in-order diff under exact task equality: old entries missing
      // from `live` become removals, trailing new entries appends. (The
      // service appends admissions in id order and removes completions in
      // place, so real deltas are tiny; anything bigger trips `max_ops`.)
      std::vector<std::size_t> removals;
      std::vector<Task> appends;
      std::size_t i = 0;
      std::size_t k = 0;
      while (i < tasks_.size() && k < live.size()) {
        if (tasks_[i] == live[k]) {
          ++i;
          ++k;
        } else {
          removals.push_back(i);
          ++i;
        }
      }
      for (; i < tasks_.size(); ++i) removals.push_back(i);
      for (; k < live.size(); ++k) appends.push_back(live[k]);
      const std::size_t ops = removals.size() + appends.size();

      if (ops == 0) {
        out.delta = true;  // same set: the cached plan is the answer
      } else if (!clean_) {
        out.decline_reason = "boundaries were tolerance-merged";
        full_rebuild(live, exec);
      } else if (ops > options_.max_ops) {
        out.decline_reason = "more ops than max_ops";
        full_rebuild(live, exec);
      } else if (removals.size() == tasks_.size()) {
        out.decline_reason = "intermediate task set empty";
        full_rebuild(live, exec);
      } else {
        bool ok = true;
        for (std::size_t r = 0; r < removals.size(); ++r) {
          apply_remove(removals[r] - r, exec, out);
        }
        for (const Task& t : appends) {
          if (!apply_add(t, exec, out)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          out.delta = true;
        } else {
          out.decline_reason = "boundary within merge tolerance";
          full_rebuild(live, exec);
        }
      }
    }
  } catch (...) {
    invalidate();
    throw;
  }
  span.arg("delta", out.delta ? 1.0 : 0.0);
  span.arg("ops", static_cast<double>(out.ops));
  return {final_energy_, schedule_};
}

}  // namespace easched
