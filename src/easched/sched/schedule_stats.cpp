#include "easched/sched/schedule_stats.hpp"

#include <algorithm>
#include <limits>

#include "easched/common/contracts.hpp"

namespace easched {

ScheduleStats compute_schedule_stats(const TaskSet& tasks, const Schedule& schedule) {
  ScheduleStats stats;
  stats.core_busy.assign(static_cast<std::size_t>(std::max(schedule.core_count(), 1)), 0.0);
  if (schedule.empty()) return stats;

  double first = std::numeric_limits<double>::infinity();
  double last = -std::numeric_limits<double>::infinity();
  double weighted_frequency = 0.0;
  double total_work = 0.0;
  stats.min_frequency = std::numeric_limits<double>::infinity();

  for (const Segment& seg : schedule.segments()) {
    first = std::min(first, seg.start);
    last = std::max(last, seg.end);
    stats.busy_time += seg.duration();
    if (seg.core >= 0 && static_cast<std::size_t>(seg.core) < stats.core_busy.size()) {
      stats.core_busy[static_cast<std::size_t>(seg.core)] += seg.duration();
    }
    weighted_frequency += seg.frequency * seg.work();
    total_work += seg.work();
    stats.min_frequency = std::min(stats.min_frequency, seg.frequency);
    stats.max_frequency = std::max(stats.max_frequency, seg.frequency);
  }
  stats.makespan = last - first;
  if (stats.makespan > 0.0) {
    stats.utilization =
        stats.busy_time / (static_cast<double>(stats.core_busy.size()) * stats.makespan);
  }
  if (total_work > 0.0) stats.mean_frequency = weighted_frequency / total_work;

  // Per-task continuity analysis: walk each task's segments in time order.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto of_task = schedule.segments_of_task(static_cast<TaskId>(i));
    for (std::size_t k = 1; k < of_task.size(); ++k) {
      ++stats.splits;
      if (of_task[k].core != of_task[k - 1].core) ++stats.migrations;
    }
  }
  return stats;
}

}  // namespace easched
