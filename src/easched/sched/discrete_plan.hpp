#pragma once

/// \file discrete_plan.hpp
/// \brief Materialize an executable schedule on a discrete P-state ladder.
///
/// `discrete_adapter.hpp` re-costs the continuous plans; this module goes
/// the rest of the way for the final schedulers: each task picks its
/// cheapest feasible operating point, its (shorter) quantized execution time
/// is redistributed over its per-subinterval availability, and Algorithm 1
/// packs everything into a concrete `Schedule` whose segment frequencies are
/// actual ladder levels. The result can be validated and executed in the
/// simulator with ladder power lookup — Section VI-C as running code rather
/// than a formula.

#include <vector>

#include "easched/power/discrete_levels.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// An executable discrete-frequency plan.
struct DiscretePlan {
  /// Collision-free schedule; every segment frequency is a ladder level.
  Schedule schedule;
  /// Chosen operating point per task (f_max for missed tasks).
  std::vector<double> level;
  /// Tasks whose requirement exceeds `f_max · availability`: they run
  /// flat-out for their whole budget and still miss their deadline.
  std::vector<bool> missed;
  /// Energy of `schedule` under the ladder's power table.
  double energy = 0.0;

  std::size_t miss_count() const;
};

/// Build the discrete plan for a final scheduling (F1/F2 `MethodResult`).
DiscretePlan plan_on_ladder(const TaskSet& tasks, const SubintervalDecomposition& subs,
                            int cores, const MethodResult& method,
                            const DiscreteLevels& levels);

}  // namespace easched
