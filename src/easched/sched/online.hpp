#pragma once

/// \file online.hpp
/// \brief Rolling-horizon online variant of the subinterval scheduler.
///
/// The paper's algorithms are offline: they see every task up front. A real
/// runtime only learns a task at its release. This module closes that gap
/// with the natural online adaptation: at every release instant, re-plan the
/// *remaining* work of all live tasks with the offline pipeline (restricted
/// to what is currently known) and execute that plan until the next release.
///
/// With continuous frequencies every re-plan is feasible (each live task
/// still fits its own window), so the online scheduler never misses a
/// deadline; the price of non-clairvoyance is energy. The
/// `ablation_online` bench and `online_arrivals` example measure that online
/// penalty against the clairvoyant offline schedule and the exact optimum.

#include <cstddef>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/sched/allocation.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Which offline planner each re-plan invokes.
enum class OnlinePlanner {
  /// The paper's subinterval pipeline (final scheduling of the chosen
  /// allocation method). Works for any core count.
  kSubinterval,
  /// YDS on the remaining work — the classic *Optimal Available* (OA)
  /// online algorithm. Uniprocessor only (`cores == 1`), `p0` ignored by
  /// the plan (YDS optimizes pure dynamic energy).
  kYds,
};

/// Options for the online scheduler.
struct OnlineOptions {
  OnlinePlanner planner = OnlinePlanner::kSubinterval;
  /// Heavy-subinterval rationing rule used by subinterval re-plans.
  AllocationMethod method = AllocationMethod::kDer;
};

/// Result of an online run.
struct OnlineResult {
  /// The executed schedule (concrete segments, collision-free).
  Schedule schedule;
  /// Total energy of the executed schedule.
  double energy = 0.0;
  /// Number of re-planning events (one per distinct release instant with
  /// live work).
  std::size_t replans = 0;
  /// Work left unfinished per task (all ~0 for continuous frequencies).
  std::vector<double> unfinished;
};

/// Run the online scheduler over a full task set whose releases arrive as
/// events. The task set plays the role of the (unknown-in-advance) arrival
/// trace; the scheduler only ever inspects tasks whose release has passed.
OnlineResult schedule_online(const TaskSet& tasks, int cores, const PowerModel& power,
                             const OnlineOptions& options = {});

/// Adaptive variant with **slack reclamation**: `C_i` is a worst-case bound,
/// the true work is `actual_work[i] ≤ C_i`, and the scheduler only discovers
/// a task is done when it completes. Early completions trigger an immediate
/// re-plan, so the freed core-seconds slow the remaining tasks down. This is
/// the classic WCET-vs-actual DVFS adaptation, built on the paper's pipeline
/// as the per-event planner.
///
/// Returns the executed schedule; `unfinished` is measured against
/// `actual_work`. Re-plans happen at releases *and* at early completions.
OnlineResult schedule_online_adaptive(const TaskSet& tasks,
                                      const std::vector<double>& actual_work, int cores,
                                      const PowerModel& power,
                                      const OnlineOptions& options = {});

}  // namespace easched
