#include "easched/sched/pipeline.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/sched/packing.hpp"

namespace easched {

namespace {

/// Build the intermediate pieces: per (task, subinterval), the ideal work is
/// preserved; if the ration is shorter than the ideal execution time the
/// frequency rises to `o·f^O / avail` (Sections V-B1 / V-C1).
std::vector<IntermediatePiece> make_intermediate_pieces(
    const SubintervalDecomposition& subs, int cores, const IdealCase& ideal,
    const AllocationMatrix& avail) {
  std::vector<IntermediatePiece> pieces;
  for (std::size_t j = 0; j < subs.size(); ++j) {
    const Subinterval& si = subs[j];
    const bool heavy = si.heavy(cores);
    for (const TaskId id : si.overlapping) {
      const auto i = static_cast<std::size_t>(id);
      const double o = ideal.execution_time_in(id, si.begin, si.end);
      if (o <= 0.0) continue;
      IntermediatePiece piece;
      piece.task = id;
      piece.subinterval = j;
      if (heavy) {
        const double a = avail(i, j);
        EASCHED_ASSERT(a > 0.0);  // DER > 0 whenever o > 0; even split > 0.
        if (o <= a) {
          piece.time = o;
          piece.frequency = ideal.frequency(id);
        } else {
          piece.time = a;
          piece.frequency = o * ideal.frequency(id) / a;
        }
      } else {
        piece.time = o;
        piece.frequency = ideal.frequency(id);
      }
      pieces.push_back(piece);
    }
  }
  return pieces;
}

/// Materialize pieces (or budgets) into a collision-free Schedule by packing
/// each subinterval with Algorithm 1.
Schedule materialize(const SubintervalDecomposition& subs, int cores,
                     const std::vector<IntermediatePiece>& pieces) {
  Schedule schedule(cores);
  std::vector<std::vector<PackItem>> per_subinterval(subs.size());
  for (const IntermediatePiece& p : pieces) {
    if (p.time <= 0.0) continue;
    per_subinterval[p.subinterval].push_back({p.task, p.time, p.frequency});
  }
  for (std::size_t j = 0; j < subs.size(); ++j) {
    if (per_subinterval[j].empty()) continue;
    pack_subinterval(subs[j].begin, subs[j].end, cores, per_subinterval[j], schedule);
  }
  schedule.coalesce();
  return schedule;
}

double pieces_energy(const std::vector<IntermediatePiece>& pieces, const PowerModel& power) {
  double total = 0.0;
  for (const IntermediatePiece& p : pieces) {
    if (p.time <= 0.0) continue;
    total += power.energy_for_duration(p.time, p.frequency);
  }
  return total;
}

}  // namespace

MethodResult schedule_with_method(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const PowerModel& power, const IdealCase& ideal,
                                  AllocationMethod method) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);

  MethodResult result;
  result.method = method;
  result.availability = allocate_available_time(tasks, subs, cores, ideal, method);

  // Intermediate scheduling.
  result.intermediate_pieces =
      make_intermediate_pieces(subs, cores, ideal, result.availability);
  result.intermediate_energy = pieces_energy(result.intermediate_pieces, power);
  result.intermediate_schedule = materialize(subs, cores, result.intermediate_pieces);

  // Final frequency refinement (equations (22)-(23)).
  result.total_available.resize(tasks.size());
  result.final_frequency.resize(tasks.size());
  std::vector<IntermediatePiece> final_pieces;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double a_total = result.availability.row_sum(i);
    EASCHED_ASSERT(a_total > 0.0);  // every task covers at least one subinterval
    result.total_available[i] = a_total;
    const double f = power.optimal_frequency(tasks[i].work, a_total);
    result.final_frequency[i] = f;
    result.final_energy += power.energy_for_work(tasks[i].work, f);

    // Distribute the used time T_i = C_i/f over the task's availability,
    // proportionally, so per-subinterval budgets and capacity stay respected.
    const double used = tasks[i].work / f;
    EASCHED_ASSERT(leq_tol(used, a_total, 1e-9 * a_total));
    const double scale = std::min(1.0, used / a_total);
    for (std::size_t j = 0; j < subs.size(); ++j) {
      const double budget = result.availability(i, j);
      if (budget <= 0.0) continue;
      IntermediatePiece piece;
      piece.task = static_cast<TaskId>(i);
      piece.subinterval = j;
      piece.time = std::min(budget * scale, subs[j].length());
      piece.frequency = f;
      if (piece.time > 0.0) final_pieces.push_back(piece);
    }
  }
  result.final_schedule = materialize(subs, cores, final_pieces);
  return result;
}

Schedule materialize_final_sorted(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const MethodResult& result) {
  EASCHED_EXPECTS(result.final_frequency.size() == tasks.size());
  EASCHED_EXPECTS(result.total_available.size() == tasks.size());

  Schedule schedule(cores);
  for (std::size_t j = 0; j < subs.size(); ++j) {
    std::vector<PackItem> items;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const double budget = result.availability(i, j);
      if (budget <= 0.0) continue;
      const double used = tasks[i].work / result.final_frequency[i];
      const double scale = std::min(1.0, used / result.total_available[i]);
      const double time = std::min(budget * scale, subs[j].length());
      if (time <= 1e-12) continue;
      items.push_back({static_cast<TaskId>(i), time, result.final_frequency[i]});
    }
    if (items.empty()) continue;
    // Stable frequency grouping: equal-frequency neighbors merge into one
    // segment after coalescing; descending order keeps the hottest tasks at
    // consistent positions across adjacent subintervals.
    std::stable_sort(items.begin(), items.end(), [](const PackItem& a, const PackItem& b) {
      if (a.frequency != b.frequency) return a.frequency > b.frequency;
      return a.task < b.task;
    });
    pack_subinterval(subs[j].begin, subs[j].end, cores, items, schedule);
  }
  schedule.coalesce();
  return schedule;
}

PipelineResult run_pipeline(const TaskSet& tasks, int cores, const PowerModel& power) {
  EASCHED_EXPECTS(!tasks.empty());
  const SubintervalDecomposition subs(tasks);
  const IdealCase ideal(tasks, power);

  PipelineResult result;
  result.ideal_energy = ideal.total_energy();
  result.even = schedule_with_method(tasks, subs, cores, power, ideal, AllocationMethod::kEven);
  result.der = schedule_with_method(tasks, subs, cores, power, ideal, AllocationMethod::kDer);
  return result;
}

}  // namespace easched
