#include "easched/sched/pipeline.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/obs/trace.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/sched/packing.hpp"

namespace easched {

namespace {

/// Build the intermediate pieces: per (task, subinterval), the ideal work is
/// preserved; if the ration is shorter than the ideal execution time the
/// frequency rises to `o·f^O / avail` (Sections V-B1 / V-C1).
///
/// Subintervals are independent: each fills its own slot of `per_sub`, and
/// the ordered concatenation reproduces the serial (subinterval-major)
/// piece order exactly.
std::vector<IntermediatePiece> make_intermediate_pieces(
    const SubintervalDecomposition& subs, int cores, const IdealCase& ideal,
    const Availability& avail, const Exec& exec) {
  // Pass 1: exact surviving-piece count per subinterval (only o > 0 yields a
  // piece), so the flat subinterval-major list is allocated once and filled
  // in place — no per-subinterval growth, no concatenation copy. Both passes
  // write disjoint slots, so a parallel exec keeps the serial order exactly.
  std::vector<std::size_t> offsets(subs.size() + 1, 0);
  exec.loop(subs.size(), [&](std::size_t j) {
    const Subinterval& si = subs[j];
    std::size_t count = 0;
    for (const TaskId id : si.overlapping) {
      if (ideal.execution_time_in(id, si.begin, si.end) > 0.0) ++count;
    }
    offsets[j + 1] = count;
  });
  for (std::size_t j = 0; j < subs.size(); ++j) offsets[j + 1] += offsets[j];

  std::vector<IntermediatePiece> pieces(offsets.back());
  exec.loop(subs.size(), [&](std::size_t j) {
    const Subinterval& si = subs[j];
    const bool heavy = si.heavy(cores);
    std::size_t slot = offsets[j];
    for (const TaskId id : si.overlapping) {
      const auto i = static_cast<std::size_t>(id);
      const double o = ideal.execution_time_in(id, si.begin, si.end);
      if (!(o > 0.0)) continue;  // exact complement of the counting pass
      IntermediatePiece piece;
      piece.task = id;
      piece.subinterval = j;
      if (heavy) {
        const double a = avail(i, j);
        EASCHED_ASSERT(a > 0.0);  // DER > 0 whenever o > 0; even split > 0.
        if (o <= a) {
          piece.time = o;
          piece.frequency = ideal.frequency(id);
        } else {
          piece.time = a;
          piece.frequency = o * ideal.frequency(id) / a;
        }
      } else {
        piece.time = o;
        piece.frequency = ideal.frequency(id);
      }
      pieces[slot++] = piece;
    }
    EASCHED_ASSERT(slot == offsets[j + 1]);
  });
  return pieces;
}

/// Materialize pieces into a collision-free Schedule by packing each
/// subinterval with Algorithm 1 and coalescing in one fused pass.
Schedule materialize(const SubintervalDecomposition& subs, int cores,
                     const std::vector<IntermediatePiece>& pieces, const Exec& exec) {
  obs::Span span("kernel.pack");
  span.arg("pieces", static_cast<double>(pieces.size()));
  // The piece list is already subinterval-major, so the CSR offsets come
  // from one counting pass and the pieces feed the packer in place — no
  // conversion copy to `PackItem`, no ungrouped segment list.
  std::vector<std::size_t> offsets(subs.size() + 1, 0);
  std::size_t last = 0;
  for (const IntermediatePiece& p : pieces) {
    EASCHED_ASSERT(p.subinterval >= last && p.subinterval < subs.size());
    last = p.subinterval;
    ++offsets[p.subinterval + 1];
  }
  for (std::size_t j = 0; j < subs.size(); ++j) offsets[j + 1] += offsets[j];
  return pack_subintervals_coalesced(subs, cores, std::span<const IntermediatePiece>(pieces),
                                     offsets, exec);
}

double pieces_energy(const std::vector<IntermediatePiece>& pieces, const PowerModel& power,
                     const Exec& exec) {
  // Per-piece energies into disjoint slots (the pow-heavy part), then one
  // serial reduction in piece order; skipped pieces contribute an exact 0.
  // Blocked so the scratch stays cache-sized instead of mirroring the whole
  // O(P) piece list; block boundaries don't move any term of the serial
  // ascending-index sum, so the total is bit-identical at any block size.
  constexpr std::size_t kBlock = std::size_t{1} << 20;
  std::vector<double> energy(std::min(pieces.size(), kBlock));
  double total = 0.0;
  for (std::size_t base = 0; base < pieces.size(); base += kBlock) {
    const std::size_t count = std::min(kBlock, pieces.size() - base);
    exec.loop(count, [&](std::size_t k) {
      const IntermediatePiece& p = pieces[base + k];
      energy[k] = p.time <= 0.0 ? 0.0 : power.energy_for_duration(p.time, p.frequency);
    });
    for (std::size_t k = 0; k < count; ++k) total += energy[k];
  }
  return total;
}

}  // namespace

MethodResult schedule_with_method(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const PowerModel& power, const IdealCase& ideal,
                                  AllocationMethod method) {
  return schedule_with_method(tasks, subs, cores, power, ideal, method, Exec::serial());
}

MethodResult schedule_with_method(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const PowerModel& power, const IdealCase& ideal,
                                  AllocationMethod method, const Exec& exec) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);

  obs::Span method_span(method == AllocationMethod::kDer ? "kernel.method.der"
                                                         : "kernel.method.even");
  method_span.arg("tasks", static_cast<double>(tasks.size()));
  method_span.arg("subintervals", static_cast<double>(subs.size()));

  MethodResult result;
  result.method = method;
  {
    obs::Span span("kernel.allocation");
    result.availability = allocate_available_time(tasks, subs, cores, ideal, method, exec);
  }

  // Intermediate scheduling.
  {
    obs::Span span("kernel.intermediate_pieces");
    result.intermediate_pieces =
        make_intermediate_pieces(subs, cores, ideal, result.availability, exec);
    span.arg("pieces", static_cast<double>(result.intermediate_pieces.size()));
  }
  result.intermediate_energy = pieces_energy(result.intermediate_pieces, power, exec);
  result.intermediate_schedule = materialize(subs, cores, result.intermediate_pieces, exec);

  obs::Span reopt_span("kernel.f2_reopt");

  // Final frequency refinement (equations (22)-(23)). Each task's total
  // availability, frequency, and energy land in per-task slots; the energy
  // sum then reduces serially in task order, matching the serial loop bit
  // for bit. The used time T_i = C_i/f distributes over the task's
  // availability proportionally (`scale`), so per-subinterval budgets and
  // capacity stay respected.
  const std::size_t n = tasks.size();
  result.total_available.resize(n);
  result.final_frequency.resize(n);
  std::vector<double> task_energy(n);
  std::vector<double> task_scale(n);
  exec.loop(n, [&](std::size_t i) {
    const double a_total = result.availability.row_sum(i);
    EASCHED_ASSERT(a_total > 0.0);  // every task covers at least one subinterval
    result.total_available[i] = a_total;
    const double f = power.optimal_frequency(tasks[i].work, a_total);
    result.final_frequency[i] = f;
    task_energy[i] = power.energy_for_work(tasks[i].work, f);
    const double used = tasks[i].work / f;
    EASCHED_ASSERT(leq_tol(used, a_total, 1e-9 * a_total));
    task_scale[i] = std::min(1.0, used / a_total);
  });
  for (std::size_t i = 0; i < n; ++i) result.final_energy += task_energy[i];

  // Final pieces, generated on demand per subinterval: task i's budget in
  // subinterval j becomes min(budget·scale_i, |s_j|) at frequency f_i.
  // Walking each subinterval's overlap row visits the same
  // (task, subinterval) cells as a task-major piece loop would, and the
  // ascending-TaskId rows yield each slice's items in exactly the order that
  // loop's stable subinterval bucketing produced — the packed schedule is
  // identical, without a task-major piece list *or* the flat CSR item buffer
  // (~0.8 GB at n = 10000; regenerating a slice is a few row reads). The
  // generator is a pure function of the refinement arrays, so the packer may
  // re-invoke it per pass; the thread_local buffer keeps concurrent
  // invocations (one per pool worker) disjoint.
  const auto final_items_of = [&](std::size_t j) -> std::span<const PackItem> {
    thread_local std::vector<PackItem> items;
    items.clear();
    const Subinterval& si = subs[j];
    for (const TaskId id : si.overlapping) {
      const auto i = static_cast<std::size_t>(id);
      const double budget = result.availability(i, j);
      if (budget <= 0.0) continue;
      const double time = std::min(budget * task_scale[i], si.length());
      if (!(time > 0.0)) continue;
      items.push_back({id, time, result.final_frequency[i]});
    }
    return items;
  };
  {
    obs::Span span("kernel.pack");
    result.final_schedule = pack_subintervals_coalesced(
        subs, cores, final_items_of, static_cast<TaskId>(n) - 1, exec);
    span.arg("segments", static_cast<double>(result.final_schedule.segments().size()));
  }
  return result;
}

Schedule materialize_final_sorted(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const MethodResult& result) {
  return materialize_final_sorted(tasks, subs, cores, result, Exec::serial());
}

Schedule materialize_final_sorted(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const MethodResult& result, const Exec& exec) {
  EASCHED_EXPECTS(result.final_frequency.size() == tasks.size());
  EASCHED_EXPECTS(result.total_available.size() == tasks.size());

  std::vector<std::vector<PackItem>> per_subinterval(subs.size());
  exec.loop(subs.size(), [&](std::size_t j) {
    std::vector<PackItem>& items = per_subinterval[j];
    // Only overlapping tasks can hold budget in subinterval j; the CSR row
    // is ascending TaskId, matching the dense all-tasks sweep order.
    for (const TaskId id : subs[j].overlapping) {
      const auto i = static_cast<std::size_t>(id);
      const double budget = result.availability(i, j);
      if (budget <= 0.0) continue;
      const double used = tasks[i].work / result.final_frequency[i];
      const double scale = std::min(1.0, used / result.total_available[i]);
      const double time = std::min(budget * scale, subs[j].length());
      if (time <= 1e-12) continue;
      items.push_back({id, time, result.final_frequency[i]});
    }
    // Stable frequency grouping: equal-frequency neighbors merge into one
    // segment after coalescing; descending order keeps the hottest tasks at
    // consistent positions across adjacent subintervals.
    std::stable_sort(items.begin(), items.end(), [](const PackItem& a, const PackItem& b) {
      if (a.frequency != b.frequency) return a.frequency > b.frequency;
      return a.task < b.task;
    });
  });
  Schedule schedule = pack_subintervals(subs, cores, per_subinterval, exec);
  schedule.coalesce();
  return schedule;
}

PipelineResult run_pipeline(const TaskSet& tasks, int cores, const PowerModel& power) {
  return run_pipeline(tasks, cores, power, Exec::serial());
}

PipelineResult run_pipeline(const TaskSet& tasks, int cores, const PowerModel& power,
                            const Exec& exec) {
  EASCHED_EXPECTS(!tasks.empty());
  obs::Span span("kernel.pipeline");
  span.arg("tasks", static_cast<double>(tasks.size()));
  span.arg("cores", static_cast<double>(cores));
  const SubintervalDecomposition subs(tasks, 1e-12, exec);
  const IdealCase ideal(tasks, power);

  PipelineResult result;
  result.ideal_energy = ideal.total_energy();
  result.even =
      schedule_with_method(tasks, subs, cores, power, ideal, AllocationMethod::kEven, exec);
  result.der =
      schedule_with_method(tasks, subs, cores, power, ideal, AllocationMethod::kDer, exec);
  return result;
}

}  // namespace easched
