#include "easched/sched/pipeline.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/obs/trace.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/sched/packing.hpp"

namespace easched {

namespace {

/// Build the intermediate pieces: per (task, subinterval), the ideal work is
/// preserved; if the ration is shorter than the ideal execution time the
/// frequency rises to `o·f^O / avail` (Sections V-B1 / V-C1).
///
/// Subintervals are independent: each fills its own slot of `per_sub`, and
/// the ordered concatenation reproduces the serial (subinterval-major)
/// piece order exactly.
std::vector<IntermediatePiece> make_intermediate_pieces(
    const SubintervalDecomposition& subs, int cores, const IdealCase& ideal,
    const AllocationMatrix& avail, const Exec& exec) {
  std::vector<std::vector<IntermediatePiece>> per_sub(subs.size());
  exec.loop(subs.size(), [&](std::size_t j) {
    const Subinterval& si = subs[j];
    const bool heavy = si.heavy(cores);
    for (const TaskId id : si.overlapping) {
      const auto i = static_cast<std::size_t>(id);
      const double o = ideal.execution_time_in(id, si.begin, si.end);
      if (o <= 0.0) continue;
      IntermediatePiece piece;
      piece.task = id;
      piece.subinterval = j;
      if (heavy) {
        const double a = avail(i, j);
        EASCHED_ASSERT(a > 0.0);  // DER > 0 whenever o > 0; even split > 0.
        if (o <= a) {
          piece.time = o;
          piece.frequency = ideal.frequency(id);
        } else {
          piece.time = a;
          piece.frequency = o * ideal.frequency(id) / a;
        }
      } else {
        piece.time = o;
        piece.frequency = ideal.frequency(id);
      }
      per_sub[j].push_back(piece);
    }
  });

  std::size_t total = 0;
  for (const auto& chunk : per_sub) total += chunk.size();
  std::vector<IntermediatePiece> pieces;
  pieces.reserve(total);
  for (const auto& chunk : per_sub) {
    pieces.insert(pieces.end(), chunk.begin(), chunk.end());
  }
  return pieces;
}

/// Materialize pieces (or budgets) into a collision-free Schedule by packing
/// each subinterval with Algorithm 1.
Schedule materialize(const SubintervalDecomposition& subs, int cores,
                     const std::vector<IntermediatePiece>& pieces, const Exec& exec) {
  obs::Span span("kernel.pack");
  span.arg("pieces", static_cast<double>(pieces.size()));
  std::vector<std::vector<PackItem>> per_subinterval(subs.size());
  for (const IntermediatePiece& p : pieces) {
    if (p.time <= 0.0) continue;
    per_subinterval[p.subinterval].push_back({p.task, p.time, p.frequency});
  }
  Schedule schedule = pack_subintervals(subs, cores, per_subinterval, exec);
  schedule.coalesce();
  return schedule;
}

double pieces_energy(const std::vector<IntermediatePiece>& pieces, const PowerModel& power,
                     const Exec& exec) {
  // Per-piece energies into disjoint slots (the pow-heavy part), then one
  // serial reduction in piece order; skipped pieces contribute an exact 0.
  std::vector<double> energy(pieces.size());
  exec.loop(pieces.size(), [&](std::size_t k) {
    const IntermediatePiece& p = pieces[k];
    energy[k] = p.time <= 0.0 ? 0.0 : power.energy_for_duration(p.time, p.frequency);
  });
  double total = 0.0;
  for (const double e : energy) total += e;
  return total;
}

}  // namespace

MethodResult schedule_with_method(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const PowerModel& power, const IdealCase& ideal,
                                  AllocationMethod method) {
  return schedule_with_method(tasks, subs, cores, power, ideal, method, Exec::serial());
}

MethodResult schedule_with_method(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const PowerModel& power, const IdealCase& ideal,
                                  AllocationMethod method, const Exec& exec) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);

  obs::Span method_span(method == AllocationMethod::kDer ? "kernel.method.der"
                                                         : "kernel.method.even");
  method_span.arg("tasks", static_cast<double>(tasks.size()));
  method_span.arg("subintervals", static_cast<double>(subs.size()));

  MethodResult result;
  result.method = method;
  {
    obs::Span span("kernel.allocation");
    result.availability = allocate_available_time(tasks, subs, cores, ideal, method, exec);
  }

  // Intermediate scheduling.
  {
    obs::Span span("kernel.intermediate_pieces");
    result.intermediate_pieces =
        make_intermediate_pieces(subs, cores, ideal, result.availability, exec);
    span.arg("pieces", static_cast<double>(result.intermediate_pieces.size()));
  }
  result.intermediate_energy = pieces_energy(result.intermediate_pieces, power, exec);
  result.intermediate_schedule = materialize(subs, cores, result.intermediate_pieces, exec);

  obs::Span reopt_span("kernel.f2_reopt");

  // Final frequency refinement (equations (22)-(23)). Each task's total
  // availability, frequency, energy, and pieces land in per-task slots; the
  // energy sum and the piece concatenation then reduce serially in task
  // order, matching the serial loop bit for bit.
  const std::size_t n = tasks.size();
  result.total_available.resize(n);
  result.final_frequency.resize(n);
  std::vector<double> task_energy(n);
  std::vector<std::vector<IntermediatePiece>> task_pieces(n);
  exec.loop(n, [&](std::size_t i) {
    const double a_total = result.availability.row_sum(i);
    EASCHED_ASSERT(a_total > 0.0);  // every task covers at least one subinterval
    result.total_available[i] = a_total;
    const double f = power.optimal_frequency(tasks[i].work, a_total);
    result.final_frequency[i] = f;
    task_energy[i] = power.energy_for_work(tasks[i].work, f);

    // Distribute the used time T_i = C_i/f over the task's availability,
    // proportionally, so per-subinterval budgets and capacity stay respected.
    const double used = tasks[i].work / f;
    EASCHED_ASSERT(leq_tol(used, a_total, 1e-9 * a_total));
    const double scale = std::min(1.0, used / a_total);
    for (std::size_t j = 0; j < subs.size(); ++j) {
      const double budget = result.availability(i, j);
      if (budget <= 0.0) continue;
      IntermediatePiece piece;
      piece.task = static_cast<TaskId>(i);
      piece.subinterval = j;
      piece.time = std::min(budget * scale, subs[j].length());
      piece.frequency = f;
      if (piece.time > 0.0) task_pieces[i].push_back(piece);
    }
  });
  for (std::size_t i = 0; i < n; ++i) result.final_energy += task_energy[i];
  std::vector<IntermediatePiece> final_pieces;
  std::size_t total_pieces = 0;
  for (const auto& chunk : task_pieces) total_pieces += chunk.size();
  final_pieces.reserve(total_pieces);
  for (const auto& chunk : task_pieces) {
    final_pieces.insert(final_pieces.end(), chunk.begin(), chunk.end());
  }
  result.final_schedule = materialize(subs, cores, final_pieces, exec);
  return result;
}

Schedule materialize_final_sorted(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const MethodResult& result) {
  return materialize_final_sorted(tasks, subs, cores, result, Exec::serial());
}

Schedule materialize_final_sorted(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                  int cores, const MethodResult& result, const Exec& exec) {
  EASCHED_EXPECTS(result.final_frequency.size() == tasks.size());
  EASCHED_EXPECTS(result.total_available.size() == tasks.size());

  std::vector<std::vector<PackItem>> per_subinterval(subs.size());
  exec.loop(subs.size(), [&](std::size_t j) {
    std::vector<PackItem>& items = per_subinterval[j];
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const double budget = result.availability(i, j);
      if (budget <= 0.0) continue;
      const double used = tasks[i].work / result.final_frequency[i];
      const double scale = std::min(1.0, used / result.total_available[i]);
      const double time = std::min(budget * scale, subs[j].length());
      if (time <= 1e-12) continue;
      items.push_back({static_cast<TaskId>(i), time, result.final_frequency[i]});
    }
    // Stable frequency grouping: equal-frequency neighbors merge into one
    // segment after coalescing; descending order keeps the hottest tasks at
    // consistent positions across adjacent subintervals.
    std::stable_sort(items.begin(), items.end(), [](const PackItem& a, const PackItem& b) {
      if (a.frequency != b.frequency) return a.frequency > b.frequency;
      return a.task < b.task;
    });
  });
  Schedule schedule = pack_subintervals(subs, cores, per_subinterval, exec);
  schedule.coalesce();
  return schedule;
}

PipelineResult run_pipeline(const TaskSet& tasks, int cores, const PowerModel& power) {
  return run_pipeline(tasks, cores, power, Exec::serial());
}

PipelineResult run_pipeline(const TaskSet& tasks, int cores, const PowerModel& power,
                            const Exec& exec) {
  EASCHED_EXPECTS(!tasks.empty());
  obs::Span span("kernel.pipeline");
  span.arg("tasks", static_cast<double>(tasks.size()));
  span.arg("cores", static_cast<double>(cores));
  const SubintervalDecomposition subs(tasks, 1e-12, exec);
  const IdealCase ideal(tasks, power);

  PipelineResult result;
  result.ideal_energy = ideal.total_energy();
  result.even =
      schedule_with_method(tasks, subs, cores, power, ideal, AllocationMethod::kEven, exec);
  result.der =
      schedule_with_method(tasks, subs, cores, power, ideal, AllocationMethod::kDer, exec);
  return result;
}

}  // namespace easched
