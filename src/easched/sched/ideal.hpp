#pragma once

/// \file ideal.hpp
/// \brief The ideal unlimited-core schedule `S^O` (Section V-A).
///
/// With unlimited cores every task runs alone: the energy-optimal frequency
/// has the closed form `f_i^O = max(f*, C_i/(D_i−R_i))` (equation (19)), the
/// task executes in one stretch `U_i^O = [R_i, R_i + C_i/f_i^O]`, and
/// `E^O = Σ C_i (γ f_i^{α−1} + p0/f_i)` (equations (20)–(21)). `S^O` is the
/// reference the DER-based allocator is built on, and `E^O` is the "IdL"
/// lower curve in the paper's figures (it ignores the core count, so it can
/// lie below the achievable optimum).

#include <span>
#include <vector>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/power/power_model.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// The closed-form ideal case for one task set.
class IdealCase {
 public:
  IdealCase(const TaskSet& tasks, const PowerModel& power);

  /// Optimal frequency `f_i^O` of equation (19).
  double frequency(TaskId i) const { return frequency_[static_cast<std::size_t>(i)]; }

  /// End of the single execution stretch: `R_i + C_i / f_i^O ≤ D_i`.
  double execution_end(TaskId i) const { return exec_end_[static_cast<std::size_t>(i)]; }

  /// Execution time of task `i` inside `[t1, t2]`: `|U_i^O ∩ [t1, t2]|`.
  /// Inline over the cached stretch endpoints — this is the DER allocator's
  /// innermost call, evaluated once per (task, subinterval) overlap (O(P)
  /// total), so it must not re-touch the task array.
  double execution_time_in(TaskId i, double t1, double t2) const {
    const auto idx = static_cast<std::size_t>(i);
    EASCHED_EXPECTS(idx < release_.size());
    return overlap_length(release_[idx], exec_end_[idx], t1, t2);
  }

  /// \name Flat per-task views (ascending TaskId)
  /// @{
  std::span<const double> frequencies() const { return frequency_; }
  std::span<const double> execution_ends() const { return exec_end_; }
  /// @}

  /// Per-task optimal energy `E_i^O` (equation (20)).
  double task_energy(TaskId i) const { return energy_[static_cast<std::size_t>(i)]; }

  /// Total ideal energy `E^O` (equation (21)).
  double total_energy() const { return total_energy_; }

  std::size_t size() const { return frequency_.size(); }

 private:
  std::vector<double> release_;  ///< R_i, cached so the hot path stays flat
  std::vector<double> frequency_;
  std::vector<double> exec_end_;
  std::vector<double> energy_;
  double total_energy_ = 0.0;
};

}  // namespace easched
