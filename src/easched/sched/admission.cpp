#include "easched/sched/admission.hpp"

#include <cmath>
#include <vector>

#include "easched/common/contracts.hpp"
#include "easched/sched/feasibility.hpp"
#include "easched/sched/pipeline.hpp"

namespace easched {

AdmissionDecision admit_task(const TaskSet& committed, const Task& candidate, int cores,
                             const PowerModel& power, double f_max) {
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(f_max > 0.0);

  AdmissionDecision decision;
  if (!committed.empty()) {
    decision.energy_before = run_pipeline(committed, cores, power).der.final_energy;
  }

  // Candidate sanity first: malformed requests are rejected, not thrown,
  // since they arrive from outside the trust boundary.
  if (!(std::isfinite(candidate.release) && std::isfinite(candidate.deadline) &&
        std::isfinite(candidate.work)) ||
      candidate.work <= 0.0 || candidate.deadline <= candidate.release) {
    decision.rejection_reason = "malformed task (need work > 0 and deadline > release)";
    return decision;
  }
  if (std::isfinite(f_max) && candidate.intensity() > f_max) {
    decision.rejection_reason = "task needs more than the frequency ceiling even running alone";
    return decision;
  }

  std::vector<Task> merged(committed.begin(), committed.end());
  merged.push_back(candidate);
  const TaskSet all(std::move(merged));

  if (std::isfinite(f_max)) {
    const FeasibilityReport report = check_feasibility(all, cores, f_max);
    if (!report.feasible) {
      decision.rejection_reason =
          report.violated_conditions.empty()
              ? "no migrating schedule fits at the frequency ceiling (flow test)"
              : report.violated_conditions.front();
      return decision;
    }
  }

  decision.admitted = true;
  decision.energy_after = run_pipeline(all, cores, power).der.final_energy;
  decision.marginal_energy = decision.energy_after - decision.energy_before;
  return decision;
}

}  // namespace easched
