#pragma once

/// \file allocation.hpp
/// \brief Available-execution-time allocation per subinterval (Section V).
///
/// The heart of the paper: every overlapping task of a *light* subinterval
/// may use the whole subinterval; inside a *heavy* subinterval the `m·len`
/// core-seconds are rationed, either evenly (`m·len/n_j` each) or
/// proportionally to the tasks' Desired Execution Requirements in the ideal
/// schedule (Algorithm 2).

#include <cstddef>
#include <vector>

#include "easched/sched/ideal.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

struct Exec;

/// Which heavy-subinterval rationing rule to use.
enum class AllocationMethod {
  kEven,  ///< `m·len/n_j` per overlapping task (schedulers I1/F1).
  kDer,   ///< proportional to DER, Algorithm 2 (schedulers I2/F2).
};

const char* to_string(AllocationMethod method);

/// Dense `n × (N−1)` matrix of *available execution times*: `avail(i, j)` is
/// the time budget task `i` may occupy a core during subinterval `j`
/// (0 when `[t_j, t_{j+1}] ⊄ [R_i, D_i]`).
class AllocationMatrix {
 public:
  AllocationMatrix(std::size_t tasks, std::size_t subintervals);

  std::size_t task_count() const { return tasks_; }
  std::size_t subinterval_count() const { return subintervals_; }

  double operator()(std::size_t task, std::size_t subinterval) const;
  void set(std::size_t task, std::size_t subinterval, double value);

  /// Total available time of one task: `A_i = Σ_j avail(i, j)`.
  double row_sum(std::size_t task) const;

  /// Total allocated time in one subinterval: `Σ_i avail(i, j)`.
  double column_sum(std::size_t subinterval) const;

 private:
  std::size_t tasks_;
  std::size_t subintervals_;
  std::vector<double> data_;
};

/// Allocate available execution times for all subintervals.
///
/// Light subintervals give each overlapping task the full length
/// (Observation 2). Heavy subintervals are rationed per `method`; the DER
/// rule distributes the full capacity `m·len` proportionally to
/// `DER(τ) = |U^O_τ ∩ [t_j, t_{j+1}]| · f^O_τ` (equation (24)), capping each
/// share at `len` and re-normalizing the rest — reproduced from the paper's
/// worked example (Section V-D). When every DER is zero the even split is
/// used as a fallback.
AllocationMatrix allocate_available_time(const TaskSet& tasks,
                                         const SubintervalDecomposition& subintervals, int cores,
                                         const IdealCase& ideal, AllocationMethod method);

/// Same allocation with the per-subinterval rationing fanned out over
/// `exec`: subinterval `j` writes only column `j` of the matrix, so the
/// result is bit-identical to the serial overload at any pool size.
AllocationMatrix allocate_available_time(const TaskSet& tasks,
                                         const SubintervalDecomposition& subintervals, int cores,
                                         const IdealCase& ideal, AllocationMethod method,
                                         const Exec& exec);

/// The heavy-subinterval DER rationing in isolation (Algorithm 2): given each
/// task's DER and the capacity `cores·length`, return per-task allocations
/// (same order as `ders`), each in `[0, length]`, summing to at most the
/// capacity. Exposed for unit testing and for the allocation ablation bench.
std::vector<double> der_ration(const std::vector<double>& ders, int cores, double length);

/// The even rationing in isolation: `min(length, cores·length/n)` each.
std::vector<double> even_ration(std::size_t task_count, int cores, double length);

}  // namespace easched
