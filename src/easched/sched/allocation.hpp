#pragma once

/// \file allocation.hpp
/// \brief Available-execution-time allocation per subinterval (Section V).
///
/// The heart of the paper: every overlapping task of a *light* subinterval
/// may use the whole subinterval; inside a *heavy* subinterval the `m·len`
/// core-seconds are rationed, either evenly (`m·len/n_j` each) or
/// proportionally to the tasks' Desired Execution Requirements in the ideal
/// schedule (Algorithm 2).

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "easched/common/contracts.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

struct Exec;

/// Which heavy-subinterval rationing rule to use.
enum class AllocationMethod {
  kEven,  ///< `m·len/n_j` per overlapping task (schedulers I1/F1).
  kDer,   ///< proportional to DER, Algorithm 2 (schedulers I2/F2).
};

const char* to_string(AllocationMethod method);

/// Sparse row-compressed matrix of *available execution times*:
/// `avail(i, j)` is the time budget task `i` may occupy a core during
/// subinterval `j` (0 when `[t_j, t_{j+1}] ⊄ [R_i, D_i]`).
///
/// An aperiodic task's window is one interval, so the subintervals it can
/// use form a contiguous run `[first_i, first_i + span_i)` — its row is
/// dense *within* that run and structurally zero outside it. Rows are
/// therefore stored as per-task slices of one flat value array (offset +
/// span), giving O(n + P) memory where P = Σ_i span_i = Σ_j n_j, instead of
/// the dense n·N layout. Row and column sums are cached: `set()` maintains
/// both incrementally (O(1)); the bulk-fill path used by the allocators
/// writes values and column sums during the per-subinterval loop (each
/// column is owned by exactly one loop iteration) and then computes row sums
/// in one deterministic in-order pass, so cached sums are bit-identical to
/// the dense accumulate-in-index-order sums at any pool size.
class Availability {
 public:
  /// Empty (0 × 0).
  Availability() = default;

  /// Rows keyed by each member task's live range in `subs`; all values 0.
  Availability(const TaskSet& tasks, const SubintervalDecomposition& subs);

  /// Rows from explicit `(first, count)` spans per task (tests, adapters).
  Availability(std::vector<SubRange> spans, std::size_t subintervals);

  std::size_t task_count() const { return spans_.size(); }
  std::size_t subinterval_count() const { return subintervals_; }
  /// Stored values Σ_i span_i (the structure's O(n + P) footprint).
  std::size_t value_count() const { return values_.size(); }

  // The accessors below are defined inline: the kernel touches every stored
  // cell several times per plan (Σ_j n_j reaches tens of millions at
  // n = 10000), so a cross-TU call per cell is measurable.

  /// Value at (task, subinterval); exact 0.0 outside the task's span.
  double operator()(std::size_t task, std::size_t subinterval) const {
    EASCHED_EXPECTS(task < spans_.size() && subinterval < subintervals_);
    const SubRange& r = spans_[task];
    if (subinterval < r.first || subinterval >= r.first + r.count) return 0.0;
    return values_[offsets_[task] + (subinterval - r.first)];
  }

  /// Set a cell inside the task's span (setting outside it throws — those
  /// cells are structurally zero). Maintains the cached row and column sums
  /// incrementally; not safe for concurrent use (the parallel allocators use
  /// the column-fill + `finalize_row_sums` path instead).
  void set(std::size_t task, std::size_t subinterval, double value) {
    EASCHED_EXPECTS(value >= 0.0);
    double* cell = slot(task, subinterval);
    row_sum_[task] += value - *cell;
    col_sum_[subinterval] += value - *cell;
    *cell = value;
  }

  /// Total available time of one task: `A_i = Σ_j avail(i, j)`, O(1).
  double row_sum(std::size_t task) const {
    EASCHED_EXPECTS(task < spans_.size());
    return row_sum_[task];
  }

  /// Total allocated time in one subinterval: `Σ_i avail(i, j)`, O(1).
  double column_sum(std::size_t subinterval) const {
    EASCHED_EXPECTS(subinterval < subintervals_);
    return col_sum_[subinterval];
  }

  /// The task's live range (row support).
  SubRange task_range(std::size_t task) const {
    EASCHED_EXPECTS(task < spans_.size());
    return spans_[task];
  }

  /// The task's dense row slice: element `k` is subinterval
  /// `task_range(task).first + k`.
  std::span<const double> row(std::size_t task) const {
    EASCHED_EXPECTS(task < spans_.size());
    return std::span<const double>(values_).subspan(offsets_[task], spans_[task].count);
  }

  /// \name Bulk-fill path (allocators)
  /// Writers that fan the per-subinterval rationing out over an `Exec` must
  /// not touch shared row accumulators. `set_in_column` writes the value and
  /// updates only the column sum — safe because subinterval `j` is written
  /// by exactly one loop iteration — and `finalize_row_sums` then computes
  /// every row sum in ascending-subinterval order (parallel over tasks,
  /// deterministic at any pool size).
  /// @{
  void set_in_column(std::size_t task, std::size_t subinterval, double value) {
    EASCHED_EXPECTS(value >= 0.0);
    double* cell = slot(task, subinterval);
    col_sum_[subinterval] += value - *cell;
    *cell = value;
  }
  void finalize_row_sums(const Exec& exec);
  /// @}

  /// \name Delta-replanning path (DeltaPlanner)
  /// An incremental replan copies the untouched rows of the previous plan
  /// wholesale and recomputes only dirty columns, then restores the cached
  /// sums by *refolding* — never by incremental add/subtract, which would
  /// break the bit-identity contract with a from-scratch plan.
  /// @{
  /// Mutable row slice (same indexing as `row`). Writers bypass the sum
  /// caches; call `rebuild_sums` before any sum is read.
  std::span<double> row_values(std::size_t task) {
    EASCHED_EXPECTS(task < spans_.size());
    return std::span<double>(values_).subspan(offsets_[task], spans_[task].count);
  }
  /// Recompute every cached column sum (ascending-member fold over the CSR
  /// overlap set of each column) and row sum (ascending-subinterval fold) —
  /// the exact folds the bulk-fill path produces, so the cached sums are
  /// bit-identical to a from-scratch allocation over the same values.
  void rebuild_sums(const SubintervalDecomposition& subs, const Exec& exec);
  /// @}

 private:
  double* slot(std::size_t task, std::size_t subinterval) {
    EASCHED_EXPECTS(task < spans_.size() && subinterval < subintervals_);
    const SubRange& r = spans_[task];
    EASCHED_EXPECTS_MSG(subinterval >= r.first && subinterval < r.first + r.count,
                        "cell outside the task's live range is structurally zero");
    return &values_[offsets_[task] + (subinterval - r.first)];
  }

  std::vector<SubRange> spans_;         ///< per-task row support
  std::vector<std::size_t> offsets_;    ///< per-task offset into values_
  std::vector<double> values_;          ///< flat row-major-within-span storage
  std::vector<double> row_sum_;
  std::vector<double> col_sum_;
  std::size_t subintervals_ = 0;
};

/// Allocate available execution times for all subintervals.
///
/// Light subintervals give each overlapping task the full length
/// (Observation 2). Heavy subintervals are rationed per `method`; the DER
/// rule distributes the full capacity `m·len` proportionally to
/// `DER(τ) = |U^O_τ ∩ [t_j, t_{j+1}]| · f^O_τ` (equation (24)), capping each
/// share at `len` and re-normalizing the rest — reproduced from the paper's
/// worked example (Section V-D). When every DER is zero the even split is
/// used as a fallback.
Availability allocate_available_time(const TaskSet& tasks,
                                     const SubintervalDecomposition& subintervals, int cores,
                                     const IdealCase& ideal, AllocationMethod method);

/// Same allocation with the per-subinterval rationing fanned out over
/// `exec`: subinterval `j` writes only column `j`, so the result is
/// bit-identical to the serial overload at any pool size.
Availability allocate_available_time(const TaskSet& tasks,
                                     const SubintervalDecomposition& subintervals, int cores,
                                     const IdealCase& ideal, AllocationMethod method,
                                     const Exec& exec);

/// The heavy-subinterval DER rationing in isolation (Algorithm 2): given each
/// task's DER and the capacity `cores·length`, return per-task allocations
/// (same order as `ders`), each in `[0, length]`, summing to at most the
/// capacity. Exposed for unit testing and for the allocation ablation bench.
std::vector<double> der_ration(const std::vector<double>& ders, int cores, double length);

/// The even rationing in isolation: `min(length, cores·length/n)` each.
std::vector<double> even_ration(std::size_t task_count, int cores, double length);

}  // namespace easched
