#include "easched/sched/discrete_adapter.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"

namespace easched {

std::size_t DiscreteRunReport::miss_count() const {
  return static_cast<std::size_t>(std::count(missed.begin(), missed.end(), true));
}

bool DiscreteRunReport::any_miss() const {
  return std::any_of(missed.begin(), missed.end(), [](bool m) { return m; });
}

std::optional<FrequencyLevel> best_feasible_level(const DiscreteLevels& levels, double work,
                                                  double budget) {
  EASCHED_EXPECTS(work > 0.0);
  EASCHED_EXPECTS(budget > 0.0);
  const double required = work / budget;
  std::optional<FrequencyLevel> best;
  double best_energy = kInf;
  for (const FrequencyLevel& level : levels.levels()) {
    if (!geq_tol(level.frequency, required, 1e-9 * level.frequency)) continue;
    const double energy = level.power * work / level.frequency;
    if (energy < best_energy) {
      best_energy = energy;
      best = level;
    }
  }
  return best;
}

namespace {

/// Shared "per-task rate requirement" re-costing used by final and ideal.
DiscreteRunReport quantize_per_task(const TaskSet& tasks, const std::vector<double>& budget,
                                    const DiscreteLevels& levels) {
  DiscreteRunReport report;
  report.missed.assign(tasks.size(), false);
  report.chosen_frequency.assign(tasks.size(), 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EASCHED_ASSERT(budget[i] > 0.0);
    if (const auto level = best_feasible_level(levels, tasks[i].work, budget[i])) {
      report.chosen_frequency[i] = level->frequency;
      report.energy += level->power * tasks[i].work / level->frequency;
    } else {
      // Even flat-out the task cannot finish within its budget: deadline
      // miss; it burns the whole budget at the top level.
      report.missed[i] = true;
      const FrequencyLevel top = levels.levels().back();
      report.chosen_frequency[i] = top.frequency;
      report.energy += top.power * budget[i];
    }
  }
  return report;
}

}  // namespace

DiscreteRunReport quantize_final(const TaskSet& tasks, const MethodResult& method,
                                 const DiscreteLevels& levels) {
  EASCHED_EXPECTS(method.total_available.size() == tasks.size());
  return quantize_per_task(tasks, method.total_available, levels);
}

DiscreteRunReport quantize_ideal(const TaskSet& tasks, const IdealCase& ideal,
                                 const DiscreteLevels& levels) {
  EASCHED_EXPECTS(ideal.size() == tasks.size());
  std::vector<double> windows;
  windows.reserve(tasks.size());
  for (const Task& t : tasks) windows.push_back(t.window());
  return quantize_per_task(tasks, windows, levels);
}

DiscreteRunReport quantize_intermediate(const TaskSet& tasks, const MethodResult& method,
                                        const DiscreteLevels& levels) {
  DiscreteRunReport report;
  report.missed.assign(tasks.size(), false);
  for (const IntermediatePiece& piece : method.intermediate_pieces) {
    if (piece.time <= 0.0) continue;
    const auto i = static_cast<std::size_t>(piece.task);
    // The chunk must complete piece.work() within piece.time: quantize the
    // required rate up to the next level.
    if (const auto level = levels.quantize_up(piece.frequency)) {
      report.energy += level->power * piece.work() / level->frequency;
    } else {
      report.missed[i] = true;
      const FrequencyLevel top = levels.levels().back();
      report.energy += top.power * piece.time;
    }
  }
  return report;
}

}  // namespace easched
