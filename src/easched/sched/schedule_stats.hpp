#pragma once

/// \file schedule_stats.hpp
/// \brief Summary metrics of a concrete schedule.
///
/// The quantities a report or dashboard shows next to the energy number:
/// makespan, per-core busy utilization, frequency statistics, preemption and
/// migration counts recovered from the segment structure.

#include <vector>

#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Aggregated schedule metrics.
struct ScheduleStats {
  /// Last segment end minus first segment start (0 for empty schedules).
  double makespan = 0.0;
  /// Total busy core-seconds Σ durations.
  double busy_time = 0.0;
  /// busy_time / (cores · makespan); 0 for empty schedules.
  double utilization = 0.0;
  /// Work-weighted average execution frequency.
  double mean_frequency = 0.0;
  double min_frequency = 0.0;
  double max_frequency = 0.0;
  /// Continuations of a task on a different core (migrations) and resumptions
  /// after another task ran in between on any core (preemption-style splits).
  std::size_t migrations = 0;
  std::size_t splits = 0;
  /// Per-core busy time, indexed by core id.
  std::vector<double> core_busy;
};

/// Compute metrics for `schedule` (`tasks` supplies work for weighting).
ScheduleStats compute_schedule_stats(const TaskSet& tasks, const Schedule& schedule);

}  // namespace easched
