#include "easched/sched/online.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/yds.hpp"
#include "easched/tasksys/subintervals.hpp"

namespace easched {

namespace {

/// Tasks alive at time `now`: released, unfinished, deadline ahead.
struct LiveSet {
  std::vector<Task> tasks;        ///< clipped windows, remaining work
  std::vector<TaskId> original;   ///< mapping back to the arrival trace
};

LiveSet collect_live(const TaskSet& all, const std::vector<double>& remaining, double now) {
  LiveSet live;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].release > now + 1e-12) continue;      // not yet revealed
    if (remaining[i] <= 1e-9 * all[i].work) continue;  // done
    if (all[i].deadline <= now + 1e-12) continue;    // window closed
    Task t;
    t.release = std::max(now, all[i].release);
    t.deadline = all[i].deadline;
    t.work = remaining[i];
    live.tasks.push_back(t);
    live.original.push_back(static_cast<TaskId>(i));
  }
  return live;
}

}  // namespace

OnlineResult schedule_online(const TaskSet& tasks, int cores, const PowerModel& power,
                             const OnlineOptions& options) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);

  // Event horizon: distinct release instants, in order.
  std::vector<double> events;
  events.reserve(tasks.size());
  for (const Task& t : tasks) events.push_back(t.release);
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  OnlineResult result;
  result.schedule.set_core_count(cores);
  std::vector<double> remaining(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) remaining[i] = tasks[i].work;

  for (std::size_t e = 0; e < events.size(); ++e) {
    const double now = events[e];
    const double next = e + 1 < events.size() ? events[e + 1] : kInf;

    const LiveSet live = collect_live(tasks, remaining, now);
    if (live.tasks.empty()) continue;
    ++result.replans;

    // Clairvoyant-restricted plan over the live tasks.
    const TaskSet sub(live.tasks);
    Schedule planned;
    if (options.planner == OnlinePlanner::kYds) {
      EASCHED_EXPECTS_MSG(cores == 1, "the YDS (Optimal Available) planner is uniprocessor");
      planned = yds_schedule(sub).schedule;
    } else {
      const SubintervalDecomposition subs(sub);
      const IdealCase ideal(sub, power);
      planned =
          schedule_with_method(sub, subs, cores, power, ideal, options.method).final_schedule;
    }

    // Execute the plan until the next arrival invalidates it.
    for (const Segment& seg : planned.segments()) {
      const double start = seg.start;
      const double end = std::min(seg.end, next);
      if (end - start <= 1e-12) continue;
      const auto orig = live.original[static_cast<std::size_t>(seg.task)];
      result.schedule.add({orig, seg.core, start, end, seg.frequency});
      remaining[static_cast<std::size_t>(orig)] -= seg.frequency * (end - start);
    }
  }

  result.schedule.coalesce();
  result.energy = result.schedule.energy(power);
  result.unfinished.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    result.unfinished[i] = std::max(0.0, remaining[i]);
  }
  return result;
}

OnlineResult schedule_online_adaptive(const TaskSet& tasks,
                                      const std::vector<double>& actual_work, int cores,
                                      const PowerModel& power, const OnlineOptions& options) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(actual_work.size() == tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EASCHED_EXPECTS_MSG(actual_work[i] > 0.0 && actual_work[i] <= tasks[i].work * (1.0 + 1e-9),
                        "actual work must be in (0, C_i]");
  }

  std::vector<double> releases;
  releases.reserve(tasks.size());
  for (const Task& t : tasks) releases.push_back(t.release);
  std::sort(releases.begin(), releases.end());
  releases.erase(std::unique(releases.begin(), releases.end()), releases.end());
  std::size_t next_release_idx = 0;

  OnlineResult result;
  result.schedule.set_core_count(cores);
  std::vector<double> believed(tasks.size());  // WCET-based remaining work
  std::vector<double> actual(actual_work);     // true remaining work
  for (std::size_t i = 0; i < tasks.size(); ++i) believed[i] = tasks[i].work;

  double now = releases.front();
  const double work_tol = 1e-9;

  // Each loop iteration: plan from `now`, execute until the next release or
  // the first early completion, whichever comes first.
  for (std::size_t guard = 0; guard < 4 * tasks.size() + 8; ++guard) {
    while (next_release_idx < releases.size() && releases[next_release_idx] <= now + 1e-12) {
      ++next_release_idx;
    }
    const double next_release =
        next_release_idx < releases.size() ? releases[next_release_idx] : kInf;

    // Believe WCET remaining; a task is live while its *actual* work is
    // unfinished (completion reveals the truth).
    std::vector<Task> live_tasks;
    std::vector<TaskId> original;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].release > now + 1e-12) continue;
      if (actual[i] <= work_tol * tasks[i].work) continue;
      if (tasks[i].deadline <= now + 1e-12) continue;
      live_tasks.push_back({std::max(now, tasks[i].release), tasks[i].deadline,
                            std::max(believed[i], work_tol)});
      original.push_back(static_cast<TaskId>(i));
    }
    if (live_tasks.empty()) {
      if (next_release_idx >= releases.size()) break;  // all work done
      now = next_release;
      continue;
    }
    ++result.replans;

    const TaskSet sub(live_tasks);
    const SubintervalDecomposition subs(sub);
    const IdealCase ideal(sub, power);
    const Schedule planned =
        schedule_with_method(sub, subs, cores, power, ideal, options.method).final_schedule;

    // Sweep the plan's breakpoints; stop at the first actual completion.
    std::vector<double> breakpoints{now};
    for (const Segment& seg : planned.segments()) {
      if (seg.start > now) breakpoints.push_back(seg.start);
      breakpoints.push_back(seg.end);
    }
    if (std::isfinite(next_release)) breakpoints.push_back(next_release);
    std::sort(breakpoints.begin(), breakpoints.end());
    breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()), breakpoints.end());

    double stop_time = std::isfinite(next_release) ? next_release : kInf;
    bool completion_stop = false;
    double plan_end = now;
    for (const Segment& seg : planned.segments()) plan_end = std::max(plan_end, seg.end);
    if (!completion_stop && stop_time > plan_end) stop_time = plan_end;

    // Work through windows; inside a window every core runs one segment.
    std::vector<double> window_actual = actual;
    for (std::size_t w = 0; w + 1 < breakpoints.size(); ++w) {
      const double a = breakpoints[w];
      const double b = std::min(breakpoints[w + 1], stop_time);
      if (b <= a + 1e-12) continue;
      if (a >= stop_time) break;
      // Earliest completion inside this window?
      double earliest = kInf;
      for (const Segment& seg : planned.segments()) {
        if (seg.start > a + 1e-12 || seg.end < b - 1e-12) continue;  // not covering window
        const auto orig = static_cast<std::size_t>(original[static_cast<std::size_t>(seg.task)]);
        const double done_here = seg.frequency * (b - a);
        if (window_actual[orig] <= done_here - 1e-12) {
          earliest = std::min(earliest, a + window_actual[orig] / seg.frequency);
        }
      }
      if (earliest < b) {
        stop_time = earliest;
        completion_stop = true;
      }
      const double window_stop = std::min(b, stop_time);
      for (const Segment& seg : planned.segments()) {
        if (seg.start > a + 1e-12 || seg.end < b - 1e-12) continue;
        const auto orig = static_cast<std::size_t>(original[static_cast<std::size_t>(seg.task)]);
        const double dt = std::min(window_stop - a, window_actual[orig] / seg.frequency);
        if (dt <= 1e-12) continue;
        result.schedule.add({static_cast<TaskId>(orig), seg.core, a, a + dt, seg.frequency});
        const double done = seg.frequency * dt;
        window_actual[orig] = std::max(0.0, window_actual[orig] - done);
        believed[orig] = std::max(0.0, believed[orig] - done);
      }
      if (completion_stop) break;
    }
    actual = window_actual;

    if (!std::isfinite(stop_time)) break;
    now = stop_time;
    if (!completion_stop && next_release_idx >= releases.size() && now >= plan_end - 1e-12) {
      break;  // plan ran to the end with no arrivals left
    }
  }

  result.schedule.coalesce();
  result.energy = result.schedule.energy(power);
  result.unfinished.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) result.unfinished[i] = std::max(0.0, actual[i]);
  return result;
}

}  // namespace easched
