#include "easched/sched/partitioned.hpp"

#include <algorithm>
#include <numeric>

#include "easched/common/contracts.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/tasksys/subintervals.hpp"

namespace easched {

namespace {

std::vector<CoreId> assign_cores(const TaskSet& tasks, int cores,
                                 PartitionHeuristic heuristic) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].intensity() > tasks[b].intensity();
  });

  std::vector<CoreId> assignment(tasks.size(), 0);
  std::vector<double> load(static_cast<std::size_t>(cores), 0.0);
  for (const std::size_t i : order) {
    CoreId chosen = 0;
    if (heuristic == PartitionHeuristic::kWorstFitDecreasing) {
      for (CoreId c = 1; c < cores; ++c) {
        if (load[static_cast<std::size_t>(c)] < load[static_cast<std::size_t>(chosen)]) {
          chosen = c;
        }
      }
    } else {
      // First-fit decreasing with unit capacity; overflow lands on the
      // least-loaded core (continuous frequencies absorb it).
      chosen = -1;
      for (CoreId c = 0; c < cores; ++c) {
        if (load[static_cast<std::size_t>(c)] + tasks[i].intensity() <= 1.0 + 1e-12) {
          chosen = c;
          break;
        }
      }
      if (chosen < 0) {
        chosen = 0;
        for (CoreId c = 1; c < cores; ++c) {
          if (load[static_cast<std::size_t>(c)] < load[static_cast<std::size_t>(chosen)]) {
            chosen = c;
          }
        }
      }
    }
    assignment[i] = chosen;
    load[static_cast<std::size_t>(chosen)] += tasks[i].intensity();
  }
  return assignment;
}

}  // namespace

PartitionedResult schedule_partitioned(const TaskSet& tasks, int cores,
                                       const PowerModel& power, AllocationMethod method,
                                       PartitionHeuristic heuristic) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);

  PartitionedResult result;
  result.assignment = assign_cores(tasks, cores, heuristic);
  result.schedule.set_core_count(cores);
  result.core_intensity.assign(static_cast<std::size_t>(cores), 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    result.core_intensity[static_cast<std::size_t>(result.assignment[i])] +=
        tasks[i].intensity();
  }

  for (CoreId core = 0; core < cores; ++core) {
    std::vector<Task> mine;
    std::vector<TaskId> original;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (result.assignment[i] == core) {
        mine.push_back(tasks[i]);
        original.push_back(static_cast<TaskId>(i));
      }
    }
    if (mine.empty()) continue;

    const TaskSet sub(std::move(mine));
    const SubintervalDecomposition subs(sub);
    const IdealCase ideal(sub, power);
    const MethodResult per_core = schedule_with_method(sub, subs, 1, power, ideal, method);
    result.total_energy += per_core.final_energy;
    for (const Segment& seg : per_core.final_schedule.segments()) {
      result.schedule.add({original[static_cast<std::size_t>(seg.task)], core, seg.start,
                           seg.end, seg.frequency});
    }
  }
  result.schedule.coalesce();
  return result;
}

}  // namespace easched
