#pragma once

/// \file render.hpp
/// \brief ASCII Gantt rendering of schedules (the paper's Fig 2/4/5 style).
///
/// One row per core; time is quantized into fixed-width character cells and
/// each cell shows the task occupying (the majority of) that slice. Meant
/// for examples, debugging, and documentation — the schedule remains the
/// source of truth.

#include <string>

#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Rendering options.
struct GanttOptions {
  /// Characters available for the timeline (excluding the row labels).
  std::size_t width = 72;
  /// Show a frequency summary line per task below the chart.
  bool frequency_legend = true;
};

/// Render `schedule` over the task set's horizon. Tasks are labelled
/// 0-9 then a-z then A-Z, cycling; idle time is '.'.
std::string render_gantt(const TaskSet& tasks, const Schedule& schedule,
                         const GanttOptions& options = {});

/// Label assigned to a task id in the Gantt output.
char gantt_label(TaskId task);

}  // namespace easched
