#include "easched/faults/fault_plan.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace easched {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, sep)) {
    if (!token.empty()) parts.push_back(token);
  }
  return parts;
}

[[noreturn]] void bad_spec(const std::string& item, const std::string& why) {
  throw std::runtime_error("bad fault spec item '" + item + "': " + why);
}

double parse_probability(const std::string& item, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !(p >= 0.0 && p <= 1.0)) {
    bad_spec(item, "probability must be in [0, 1]");
  }
  return p;
}

std::uint64_t parse_count(const std::string& item, const std::string& value) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') bad_spec(item, "expected an integer");
  return static_cast<std::uint64_t>(n);
}

/// Parse "key=value,key=value" into ordered pairs.
std::vector<std::pair<std::string, std::string>> parse_fields(const std::string& item,
                                                              const std::string& text) {
  std::vector<std::pair<std::string, std::string>> fields;
  for (const std::string& field : split(text, ',')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) bad_spec(item, "field '" + field + "' is not key=value");
    fields.emplace_back(field.substr(0, eq), field.substr(eq + 1));
  }
  return fields;
}

}  // namespace

bool FaultPlan::empty() const {
  return solver_stall_p == 0.0 && solver_nan_p == 0.0 && job_delay_p == 0.0 &&
         job_fail_p == 0.0 && request_drop_p == 0.0 && request_dup_p == 0.0 && kills.empty();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& item : split(spec, ';')) {
    if (item.rfind("seed=", 0) == 0) {
      plan.seed = parse_count(item, item.substr(5));
      continue;
    }
    if (item.rfind("kill:", 0) == 0) {
      KillSpec kill;
      const std::string rest = item.substr(5);
      const auto at = rest.find('@');
      if (at == std::string::npos) {
        kill.point = rest;
      } else {
        kill.point = rest.substr(0, at);
        kill.at_visit = parse_count(item, rest.substr(at + 1));
        if (kill.at_visit == 0) bad_spec(item, "visit index is 1-based");
      }
      if (kill.point.empty()) bad_spec(item, "missing kill-point name");
      plan.kills.push_back(std::move(kill));
      continue;
    }
    if (item.rfind("restart_after=", 0) == 0) {
      // Attaches to the kill it follows: `kill:shard.submit@3;restart_after=5`.
      if (plan.kills.empty()) bad_spec(item, "restart_after= must follow a kill:");
      plan.kills.back().restart_after = parse_count(item, item.substr(14));
      continue;
    }

    const auto colon = item.find(':');
    if (colon == std::string::npos) bad_spec(item, "expected 'site:fields' or 'seed=N'");
    const std::string site = item.substr(0, colon);
    const auto fields = parse_fields(item, item.substr(colon + 1));

    double p = -1.0;
    std::uint64_t us = 0;
    bool saw_us = false;
    for (const auto& [key, value] : fields) {
      if (key == "p") {
        p = parse_probability(item, value);
      } else if (key == "us") {
        us = parse_count(item, value);
        saw_us = true;
      } else {
        bad_spec(item, "unknown field '" + key + "'");
      }
    }
    if (p < 0.0) bad_spec(item, "missing p=");

    if (site == "solver_stall") {
      plan.solver_stall_p = p;
    } else if (site == "solver_nan") {
      plan.solver_nan_p = p;
    } else if (site == "job_delay") {
      plan.job_delay_p = p;
      plan.job_delay = std::chrono::microseconds(us);
    } else if (site == "job_fail") {
      plan.job_fail_p = p;
    } else if (site == "request_drop") {
      plan.request_drop_p = p;
    } else if (site == "request_dup") {
      plan.request_dup_p = p;
    } else {
      bad_spec(item, "unknown fault site '" + site + "'");
    }
    if (saw_us && site != "job_delay") bad_spec(item, "only job_delay takes us=");
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  out.precision(17);
  out << "seed=" << seed;
  if (solver_stall_p > 0.0) out << ";solver_stall:p=" << solver_stall_p;
  if (solver_nan_p > 0.0) out << ";solver_nan:p=" << solver_nan_p;
  if (job_delay_p > 0.0) {
    out << ";job_delay:p=" << job_delay_p << ",us=" << job_delay.count();
  }
  if (job_fail_p > 0.0) out << ";job_fail:p=" << job_fail_p;
  if (request_drop_p > 0.0) out << ";request_drop:p=" << request_drop_p;
  if (request_dup_p > 0.0) out << ";request_dup:p=" << request_dup_p;
  for (const KillSpec& kill : kills) {
    out << ";kill:" << kill.point;
    if (kill.at_visit != 1) out << "@" << kill.at_visit;
    if (kill.restart_after != 0) out << ";restart_after=" << kill.restart_after;
  }
  return out.str();
}

}  // namespace easched
