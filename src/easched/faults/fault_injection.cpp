#include "easched/faults/fault_injection.hpp"

#include <thread>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"

namespace easched {

namespace {

std::atomic<FaultInjector*> g_current{nullptr};

/// Pure decision: does occurrence `n` of `site` fire at probability `p`
/// under `seed`? Hash-seeded SplitMix draw — no shared RNG state, so the
/// verdict for occurrence `n` is independent of who else is drawing.
bool decide(std::uint64_t seed, FaultSite site, std::uint64_t n, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  Rng rng(Rng::seed_of("easched-fault", static_cast<std::uint64_t>(site), n, seed));
  return rng.uniform() < p;
}

}  // namespace

std::string_view site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kSolverStall: return "solver_stall";
    case FaultSite::kSolverNan: return "solver_nan";
    case FaultSite::kJobDelay: return "job_delay";
    case FaultSite::kJobFail: return "job_fail";
    case FaultSite::kRequestDrop: return "request_drop";
    case FaultSite::kRequestDup: return "request_dup";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)), kills_(plan_.kills.size()) {
  for (std::size_t k = 0; k < plan_.kills.size(); ++k) kills_[k].spec = plan_.kills[k];
}

double FaultInjector::probability(FaultSite site) const {
  switch (site) {
    case FaultSite::kSolverStall: return plan_.solver_stall_p;
    case FaultSite::kSolverNan: return plan_.solver_nan_p;
    case FaultSite::kJobDelay: return plan_.job_delay_p;
    case FaultSite::kJobFail: return plan_.job_fail_p;
    case FaultSite::kRequestDrop: return plan_.request_drop_p;
    case FaultSite::kRequestDup: return plan_.request_dup_p;
  }
  return 0.0;
}

bool FaultInjector::fire(FaultSite site) {
  const auto index = static_cast<std::size_t>(site);
  EASCHED_ASSERT(index < kFaultSiteCount);
  const std::uint64_t n = occurrences_[index].fetch_add(1, std::memory_order_relaxed);
  if (!decide(plan_.seed, site, n, probability(site))) return false;
  fired_[index].fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::kill_point(std::string_view name) {
  for (KillState& kill : kills_) {
    if (kill.spec.point != name) continue;
    const std::uint64_t visit = kill.visits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (visit == kill.spec.at_visit) {
      throw InjectedCrash(std::string(name), kill.spec.restart_after);
    }
  }
}

void FaultInjector::on_job() {
  if (plan_.job_delay_p > 0.0 && fire(FaultSite::kJobDelay)) {
    std::this_thread::sleep_for(plan_.job_delay);
  }
  if (plan_.job_fail_p > 0.0 && fire(FaultSite::kJobFail)) {
    throw InjectedFault("injected thread-pool job failure");
  }
}

std::uint64_t FaultInjector::occurrences(FaultSite site) const {
  return occurrences_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(FaultSite site) const {
  return fired_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::kill_visits(std::string_view name) const {
  for (const KillState& kill : kills_) {
    if (kill.spec.point == name) return kill.visits.load(std::memory_order_relaxed);
  }
  return 0;
}

namespace faults {

FaultInjector* current() noexcept { return g_current.load(std::memory_order_acquire); }

FaultScope::FaultScope(FaultInjector& injector)
    : previous_(g_current.exchange(&injector, std::memory_order_acq_rel)) {}

FaultScope::~FaultScope() { g_current.store(previous_, std::memory_order_release); }

}  // namespace faults

}  // namespace easched
