#pragma once

/// \file fault_plan.hpp
/// \brief Declarative, seeded specification of faults to inject.
///
/// Fault tolerance that is only exercised by real failures is fault
/// tolerance that has never been tested. A `FaultPlan` describes — as plain
/// data — which failure modes the process should *manufacture* and how
/// often: solver stalls and poisoned iterates (the planning path), delayed
/// or failing thread-pool jobs (the compute path), dropped or duplicated
/// service requests (the traffic path), and named kill points (the
/// crash-recovery path). The plan is seeded, and every injection decision is
/// a pure function of `(seed, site, per-site occurrence counter)`, so a
/// given plan reproduces the same failure sequence on every run — CI can
/// walk each degradation path deterministically.
///
/// Plans round-trip through a compact text spec (the CLI's `--faults=`):
///
///   seed=42;solver_stall:p=1;solver_nan:p=0.25;job_delay:p=0.1,us=200;
///   job_fail:p=0.05;request_drop:p=0.01;request_dup:p=0.01;kill:journal.admit@3
///
/// Probabilities are in [0, 1]. A `kill:` entry names a kill point (see
/// `fault_injection.hpp`) and the 1-based visit at which to crash
/// (`@k`, default 1). The empty plan injects nothing.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace easched {

/// One named crash site: throw `InjectedCrash` on the `at_visit`-th visit.
/// `restart_after` turns the kill into a supervised *restart schedule*: a
/// supervisor that contains the crash keeps the shard down for that many
/// further routed operations before restarting it (0 = restart immediately).
/// It is written as a standalone item right after its kill —
/// `kill:shard.submit@3;restart_after=5` — mirroring how chaos recipes read.
struct KillSpec {
  std::string point;
  std::uint64_t at_visit = 1;  ///< 1-based
  std::uint64_t restart_after = 0;  ///< supervised ops to stay down post-crash

  friend bool operator==(const KillSpec&, const KillSpec&) = default;
};

/// What to inject, how often. Plain data; execution lives in
/// `FaultInjector`.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Per solver invocation: force a non-converging early exit (the solver
  /// reports an iteration-cap stall without making progress).
  double solver_stall_p = 0.0;
  /// Per solver invocation: poison the first iterate with a quiet NaN so the
  /// numerical-breakdown detection path runs.
  double solver_nan_p = 0.0;

  /// Per thread-pool job: sleep `job_delay` before running the job.
  double job_delay_p = 0.0;
  std::chrono::microseconds job_delay{0};
  /// Per thread-pool job: throw `InjectedFault` instead of running the job.
  double job_fail_p = 0.0;

  /// Per service submission: drop the request (the client sees an immediate
  /// reasoned rejection, as if the message were lost and negatively acked).
  double request_drop_p = 0.0;
  /// Per service submission: enqueue the request twice (at-least-once
  /// delivery misbehavior; the service must stay consistent anyway).
  double request_dup_p = 0.0;

  /// Crash sites, by name and visit index.
  std::vector<KillSpec> kills;

  /// True when the plan injects nothing at all.
  bool empty() const;

  /// Parse the `--faults=` spec grammar documented above. Throws
  /// `std::runtime_error` on malformed input (unknown site, bad probability,
  /// missing field).
  static FaultPlan parse(const std::string& spec);

  /// Canonical spec string; `parse(to_string())` round-trips.
  std::string to_string() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace easched
