#pragma once

/// \file fault_injection.hpp
/// \brief Deterministic execution of a `FaultPlan`: the process-wide
///        injector and the hook points the rest of the library calls.
///
/// The injector is *compiled in always* and *zero-cost when empty*: every
/// hook first loads one atomic pointer, and when no injector is installed
/// (the default, and the only state production code ever sees) it returns
/// immediately. Installing a `FaultScope` arms the hooks for the dynamic
/// extent of the scope; tests, the `faults` CI job, and `easched_cli
/// --faults=...` are the only installers.
///
/// **Determinism.** Every decision is a pure function of `(plan seed, fault
/// site, per-site occurrence counter)` — no wall clock, no global RNG. Two
/// runs that visit a site in the same order draw the same verdicts. Sites on
/// sequential paths (solver invocations under the service's state lock,
/// submissions from a single client) are therefore exactly reproducible;
/// sites on concurrent paths (pool jobs) get a reproducible *set* of
/// verdicts but racy assignment — which is safe, because job delays and job
/// failures never change kernel results (failed claimer jobs degrade to
/// caller-executed chunks; see `parallel_for.hpp`).
///
/// Kill points model crashes: `kill_point("name")` throws `InjectedCrash`
/// on the visit the plan arms (`kill:name@k`). Service code calls them
/// around journal appends so recovery can be tested at every write boundary.

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "easched/faults/fault_plan.hpp"

namespace easched {

/// Thrown by an injected thread-pool job failure (site `job_fail`).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by an armed kill point: models a crash at that program point.
/// Deliberately NOT derived from `std::exception`'s common service-handled
/// categories semantics: service code must never swallow it — a crash
/// propagates all the way out so recovery tests observe the aborted state.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& point, std::uint64_t restart_after = 0)
      : std::runtime_error("injected crash at kill point '" + point + "'"),
        point_(point),
        restart_after_(restart_after) {}
  const std::string& point() const { return point_; }
  /// The kill spec's restart schedule: how many routed operations a
  /// supervisor should keep the crashed shard down before restarting it.
  std::uint64_t restart_after() const { return restart_after_; }

 private:
  std::string point_;
  std::uint64_t restart_after_ = 0;
};

/// The sites the library consults. Extend here + in `site_name`.
enum class FaultSite {
  kSolverStall = 0,
  kSolverNan,
  kJobDelay,
  kJobFail,
  kRequestDrop,
  kRequestDup,
};
inline constexpr std::size_t kFaultSiteCount = 6;

/// Stable display name of a site ("solver_stall", ...).
std::string_view site_name(FaultSite site);

/// Executes one `FaultPlan` deterministically. Thread-safe: counters are
/// atomics; decisions depend only on the occurrence index a caller draws.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Consult `site`: advances its occurrence counter and returns whether
  /// this occurrence fires under the plan's probability for the site.
  bool fire(FaultSite site);

  /// Crash hook: counts the visit and throws `InjectedCrash` when the plan
  /// arms `name` at this visit index.
  void kill_point(std::string_view name);

  /// Apply the job-site faults (delay, then failure) for one pool job.
  void on_job();

  /// \name Observability (for tests and the CLI's fault report)
  /// @{
  std::uint64_t occurrences(FaultSite site) const;
  std::uint64_t fired(FaultSite site) const;
  /// Visits of an armed kill point (0 for unarmed names).
  std::uint64_t kill_visits(std::string_view name) const;
  /// @}

 private:
  double probability(FaultSite site) const;

  struct KillState {
    KillSpec spec;
    std::atomic<std::uint64_t> visits{0};
  };

  FaultPlan plan_;
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> occurrences_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> fired_{};
  std::vector<KillState> kills_;  ///< one per plan.kills entry, fixed at ctor
};

namespace faults {

/// The installed injector, or nullptr (the common, zero-cost case).
FaultInjector* current() noexcept;

/// RAII installation of an injector as the process-wide current one.
/// Scopes restore the previous injector on destruction; installation is a
/// test/CLI-level act — do not overlap scopes from concurrent threads.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& injector);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* previous_;
};

/// \name Inline hooks (fast path: one relaxed atomic load when idle)
/// @{
inline bool fire(FaultSite site) {
  FaultInjector* injector = current();
  return injector != nullptr && injector->fire(site);
}

inline void on_job() {
  if (FaultInjector* injector = current()) injector->on_job();
}

inline void kill_point(std::string_view name) {
  if (FaultInjector* injector = current()) injector->kill_point(name);
}
/// @}

}  // namespace faults

}  // namespace easched
