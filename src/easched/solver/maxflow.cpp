#include "easched/solver/maxflow.hpp"

#include <algorithm>
#include <queue>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"

namespace easched {

MaxFlowNetwork::MaxFlowNetwork(std::size_t nodes) : graph_(nodes) {
  EASCHED_EXPECTS(nodes >= 2);
}

std::size_t MaxFlowNetwork::add_edge(std::size_t from, std::size_t to, double capacity) {
  EASCHED_EXPECTS(from < graph_.size() && to < graph_.size());
  EASCHED_EXPECTS(from != to);
  EASCHED_EXPECTS(capacity >= 0.0);
  EASCHED_EXPECTS_MSG(!solved_, "cannot add edges after max_flow()");

  const std::size_t fwd_pos = graph_[from].size();
  const std::size_t rev_pos = graph_[to].size();
  graph_[from].push_back({to, rev_pos, capacity, capacity});
  graph_[to].push_back({from, fwd_pos, 0.0, 0.0});
  edge_index_.push_back({from, fwd_pos});
  return edge_index_.size() - 1;
}

bool MaxFlowNetwork::build_levels(std::size_t source, std::size_t sink, double tolerance) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> frontier;
  level_[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t node = frontier.front();
    frontier.pop();
    for (const Edge& e : graph_[node]) {
      if (e.capacity > tolerance && level_[e.to] < 0) {
        level_[e.to] = level_[node] + 1;
        frontier.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

double MaxFlowNetwork::push(std::size_t node, std::size_t sink, double limit,
                            double tolerance) {
  if (node == sink) return limit;
  for (std::size_t& k = next_edge_[node]; k < graph_[node].size(); ++k) {
    Edge& e = graph_[node][k];
    if (e.capacity <= tolerance || level_[e.to] != level_[node] + 1) continue;
    const double pushed = push(e.to, sink, std::min(limit, e.capacity), tolerance);
    if (pushed > tolerance) {
      e.capacity -= pushed;
      graph_[e.to][e.reverse].capacity += pushed;
      return pushed;
    }
  }
  return 0.0;
}

double MaxFlowNetwork::max_flow(std::size_t source, std::size_t sink, double tolerance) {
  EASCHED_EXPECTS(source < graph_.size() && sink < graph_.size());
  EASCHED_EXPECTS(source != sink);
  EASCHED_EXPECTS_MSG(!solved_, "max_flow() may be called once");
  solved_ = true;

  double total = 0.0;
  while (build_levels(source, sink, tolerance)) {
    next_edge_.assign(graph_.size(), 0);
    for (;;) {
      const double pushed = push(source, sink, kInf, tolerance);
      if (pushed <= tolerance) break;
      total += pushed;
    }
  }
  return total;
}

double MaxFlowNetwork::flow_on(std::size_t edge_id) const {
  EASCHED_EXPECTS(edge_id < edge_index_.size());
  const auto [node, offset] = edge_index_[edge_id];
  const Edge& e = graph_[node][offset];
  return e.original - e.capacity;
}

}  // namespace easched
