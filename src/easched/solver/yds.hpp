#pragma once

/// \file yds.hpp
/// \brief The Yao–Demers–Shenker (YDS) optimal uniprocessor schedule.
///
/// Related-work baseline (Section I-A, [23]): for one core with
/// `p(f) = f^α` (no static power) the energy-optimal schedule repeatedly
/// extracts the *critical interval* — the interval `[t1, t2]` maximizing the
/// intensity `C(t1, t2)/(t2 − t1)` over tasks fully contained in it — runs
/// those tasks there EDF at exactly that intensity, removes the interval from
/// the timeline, and recurses. The schedule is independent of `α ≥ 2`.
///
/// Our implementation works directly in original (uncompressed) time by
/// maintaining the set of still-free time slots, which keeps the emitted
/// segments directly comparable with the multi-core schedulers' output.

#include <vector>

#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// One extraction step of the YDS greedy, for inspection and tests.
struct YdsStep {
  double begin = 0.0;      ///< critical interval start (original time)
  double end = 0.0;        ///< critical interval end (original time)
  double speed = 0.0;      ///< intensity = work / free time inside it
  std::vector<TaskId> tasks;  ///< tasks scheduled in this step
};

/// Result of the YDS algorithm.
struct YdsResult {
  Schedule schedule;           ///< single-core (core 0), collision-free
  std::vector<YdsStep> steps;  ///< extraction order, decreasing speed
};

/// Compute the YDS schedule. Intended for feasible uniprocessor instances;
/// if the instance forces unbounded speed the contracts fire.
YdsResult yds_schedule(const TaskSet& tasks);

}  // namespace easched
