#pragma once

/// \file interior_point.hpp
/// \brief Log-barrier interior-point solver for the reformulated problem.
///
/// The paper names the Interior Point method as the state-of-the-art exact
/// approach ("requires a large number of numeric evaluations and iterations"
/// — the very cost its heuristics avoid). This module implements it so the
/// claim can be measured, and as an independent check on the FISTA solver:
///
///   min  Σ_i g_i(T_i)     s.t.  0 ≤ x_{i,j} ≤ len_j,  Σ_i x_{i,j} ≤ m·len_j
///
/// Path following on the barrier Φ_μ(x) = F(x) − μ·Σ log(slacks), damped
/// Newton inner iterations with a fraction-to-boundary line search. The
/// Hessian is a positive diagonal plus `tasks + subintervals` rank-one
/// terms, so Newton directions come from the Woodbury identity with one
/// dense Cholesky of that small core matrix per step.

#include "easched/solver/convex_solver.hpp"

namespace easched {

class ThreadPool;

/// Interior-point knobs.
struct InteriorPointOptions {
  /// Barrier reduction factor per outer iteration.
  double barrier_decrease = 0.2;
  /// Terminate when the duality-gap proxy (constraint count · μ) falls
  /// below this fraction of the current objective.
  double gap_tol = 1e-9;
  /// Newton steps per barrier value.
  std::size_t max_newton_steps = 50;
  /// Newton decrement threshold for ending an inner phase.
  double newton_tol = 1e-10;
  /// Hard cap on outer iterations.
  std::size_t max_outer_iterations = 100;
  /// Optional worker pool for the dominant linear algebra (residual /
  /// Hessian-apply loops and the core Cholesky). Null runs serial. Iterates
  /// are bit-identical to the serial solver at any pool size (the
  /// determinism contract of `parallel/exec.hpp`).
  ThreadPool* pool = nullptr;
  /// Cooperative deadline/iteration budget (default: unlimited). Checked
  /// between Newton steps; `max_solver_iterations` caps Newton steps.
  PlanBudget budget{};
  /// Optional warm-start hint (see `SolverOptions::warm_start`): the seed
  /// blends the hint toward the interior anchor (the hint may sit on the
  /// boundary where the barrier is undefined) and the initial barrier weight
  /// shrinks by `warm_barrier_scale`, skipping the outer path the hint has
  /// already walked. An unusable hint (wrong shape, non-interior after
  /// blending, non-finite objective) silently falls back to the cold start.
  /// Not owned; must outlive the call. Null = cold start.
  const Availability* warm_start = nullptr;
  /// Initial-μ reduction applied only when the warm start is accepted.
  double warm_barrier_scale = 1e-3;
};

/// Statistics of an interior-point run (returned alongside the solution).
/// `solution.status` is the structured ending: converged, iteration cap,
/// budget exhaustion, or numerical breakdown (a failed Cholesky or a
/// non-finite iterate — the solution then carries the last good iterate).
struct InteriorPointResult {
  /// Shared result shape with the first-order solver.
  SolverResult solution;
  std::size_t outer_iterations = 0;
  std::size_t newton_steps = 0;
  /// Total dense Cholesky factorizations performed ("numeric evaluations").
  std::size_t factorizations = 0;
  double final_barrier = 0.0;
};

/// Solve problem (15) by the barrier method. `cores ≥ 1`.
InteriorPointResult solve_optimal_interior_point(const TaskSet& tasks,
                                                 const SubintervalDecomposition& subs,
                                                 int cores, const PowerModel& power,
                                                 const InteriorPointOptions& options = {});

/// Convenience overload building its own decomposition.
InteriorPointResult solve_optimal_interior_point(const TaskSet& tasks, int cores,
                                                 const PowerModel& power,
                                                 const InteriorPointOptions& options = {});

}  // namespace easched
