#include "easched/solver/problem.hpp"

#include <algorithm>
#include <cmath>

#include "easched/common/contracts.hpp"
#include "easched/parallel/exec.hpp"

namespace easched::detail {

SolverLayout SolverLayout::build(const SubintervalDecomposition& subs, int cores) {
  EASCHED_EXPECTS(cores > 0);
  SolverLayout layout;
  for (std::size_t j = 0; j < subs.size(); ++j) {
    const Subinterval& si = subs[j];
    if (si.overlapping.empty()) continue;
    Block block;
    block.offset = layout.variable_count;
    block.subinterval = j;
    block.length = si.length();
    block.budget = static_cast<double>(cores) * si.length();
    block.tasks = si.overlapping;
    layout.variable_count += block.tasks.size();
    layout.blocks.push_back(std::move(block));
  }
  return layout;
}

Availability SolverLayout::to_availability(const std::vector<double>& x, const TaskSet& tasks,
                                           const SubintervalDecomposition& subs) const {
  EASCHED_EXPECTS(x.size() == variable_count);
  Availability alloc(tasks, subs);
  for (const Block& block : blocks) {
    for (std::size_t k = 0; k < block.tasks.size(); ++k) {
      alloc.set_in_column(static_cast<std::size_t>(block.tasks[k]), block.subinterval,
                          std::max(0.0, x[block.offset + k]));
    }
  }
  alloc.finalize_row_sums(Exec::serial());
  return alloc;
}

SeparableObjective::SeparableObjective(const TaskSet& tasks, const PowerModel& power,
                                       const SolverLayout& layout)
    : power_(&power), layout_(&layout) {
  work_pow_.reserve(tasks.size());
  for (const Task& t : tasks) work_pow_.push_back(std::pow(t.work, power.alpha()));

  // CSR task → variable index. Visiting blocks in order enumerates the flat
  // indices ascending, so each task's variable list is already in the exact
  // order the serial block sweeps touch it.
  var_offsets_.assign(tasks.size() + 1, 0);
  for (const auto& block : layout.blocks) {
    for (const TaskId id : block.tasks) ++var_offsets_[static_cast<std::size_t>(id) + 1];
  }
  for (std::size_t i = 1; i < var_offsets_.size(); ++i) var_offsets_[i] += var_offsets_[i - 1];
  var_ids_.resize(layout.variable_count);
  std::vector<std::size_t> cursor(var_offsets_.begin(), var_offsets_.end() - 1);
  for (const auto& block : layout.blocks) {
    for (std::size_t k = 0; k < block.tasks.size(); ++k) {
      var_ids_[cursor[static_cast<std::size_t>(block.tasks[k])]++] = block.offset + k;
    }
  }
}

std::vector<double> SeparableObjective::totals(const std::vector<double>& x) const {
  std::vector<double> total(work_pow_.size(), 0.0);
  for (const auto& block : layout_->blocks) {
    for (std::size_t k = 0; k < block.tasks.size(); ++k) {
      total[static_cast<std::size_t>(block.tasks[k])] += x[block.offset + k];
    }
  }
  return total;
}

std::vector<double> SeparableObjective::totals(const std::vector<double>& x,
                                               const Exec& exec) const {
  std::vector<double> total(work_pow_.size(), 0.0);
  exec.loop(work_pow_.size(), [&](std::size_t i) {
    // var_ids_ lists task i's variables in ascending flat order — the same
    // order the serial block sweep adds them, so the sum is bit-identical.
    double t = 0.0;
    for (std::size_t k = var_offsets_[i]; k < var_offsets_[i + 1]; ++k) t += x[var_ids_[k]];
    total[i] = t;
  });
  return total;
}

double SeparableObjective::value_from_totals(const std::vector<double>& total) const {
  const double alpha = power_->alpha();
  const double gamma = power_->gamma();
  const double p0 = power_->static_power();
  double sum = 0.0;
  for (std::size_t i = 0; i < total.size(); ++i) {
    // A projected/backtracked trial step may zero a task's execution time;
    // the true objective is +inf there.
    if (total[i] <= 0.0) return std::numeric_limits<double>::infinity();
    sum += gamma * work_pow_[i] * std::pow(total[i], 1.0 - alpha) + p0 * total[i];
  }
  return sum;
}

double SeparableObjective::value_from_totals(const std::vector<double>& total,
                                             const Exec& exec) const {
  for (const double t : total) {
    if (t <= 0.0) return std::numeric_limits<double>::infinity();
  }
  const double alpha = power_->alpha();
  const double gamma = power_->gamma();
  const double p0 = power_->static_power();
  std::vector<double> term(total.size());
  exec.loop(total.size(), [&](std::size_t i) {
    term[i] = gamma * work_pow_[i] * std::pow(total[i], 1.0 - alpha) + p0 * total[i];
  });
  double sum = 0.0;
  for (const double t : term) sum += t;
  return sum;
}

std::vector<double> SeparableObjective::task_gradient(const std::vector<double>& total) const {
  const double alpha = power_->alpha();
  const double gamma = power_->gamma();
  const double p0 = power_->static_power();
  std::vector<double> gprime(total.size());
  for (std::size_t i = 0; i < total.size(); ++i) {
    EASCHED_ASSERT(total[i] > 0.0);
    gprime[i] = -(alpha - 1.0) * gamma * work_pow_[i] * std::pow(total[i], -alpha) + p0;
  }
  return gprime;
}

std::vector<double> SeparableObjective::task_gradient(const std::vector<double>& total,
                                                      const Exec& exec) const {
  const double alpha = power_->alpha();
  const double gamma = power_->gamma();
  const double p0 = power_->static_power();
  std::vector<double> gprime(total.size());
  exec.loop(total.size(), [&](std::size_t i) {
    EASCHED_ASSERT(total[i] > 0.0);
    gprime[i] = -(alpha - 1.0) * gamma * work_pow_[i] * std::pow(total[i], -alpha) + p0;
  });
  return gprime;
}

std::vector<double> SeparableObjective::task_hessian(const std::vector<double>& total) const {
  const double alpha = power_->alpha();
  const double gamma = power_->gamma();
  std::vector<double> gsecond(total.size());
  for (std::size_t i = 0; i < total.size(); ++i) {
    EASCHED_ASSERT(total[i] > 0.0);
    gsecond[i] =
        alpha * (alpha - 1.0) * gamma * work_pow_[i] * std::pow(total[i], -alpha - 1.0);
  }
  return gsecond;
}

std::vector<double> SeparableObjective::task_hessian(const std::vector<double>& total,
                                                     const Exec& exec) const {
  const double alpha = power_->alpha();
  const double gamma = power_->gamma();
  std::vector<double> gsecond(total.size());
  exec.loop(total.size(), [&](std::size_t i) {
    EASCHED_ASSERT(total[i] > 0.0);
    gsecond[i] =
        alpha * (alpha - 1.0) * gamma * work_pow_[i] * std::pow(total[i], -alpha - 1.0);
  });
  return gsecond;
}

void SeparableObjective::gradient(const std::vector<double>& x, std::vector<double>& grad,
                                  std::vector<double>& total_out) const {
  total_out = totals(x);
  const std::vector<double> gprime = task_gradient(total_out);
  grad.resize(x.size());
  for (const auto& block : layout_->blocks) {
    for (std::size_t k = 0; k < block.tasks.size(); ++k) {
      grad[block.offset + k] = gprime[static_cast<std::size_t>(block.tasks[k])];
    }
  }
}

std::vector<double> interior_point(const SolverLayout& layout, double shrink) {
  EASCHED_EXPECTS(shrink > 0.0 && shrink <= 1.0);
  std::vector<double> x(layout.variable_count, 0.0);
  for (const auto& block : layout.blocks) {
    const double share =
        shrink * std::min(block.length, block.budget / static_cast<double>(block.tasks.size()));
    for (std::size_t k = 0; k < block.tasks.size(); ++k) x[block.offset + k] = share;
  }
  return x;
}

}  // namespace easched::detail
