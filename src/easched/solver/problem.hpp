#pragma once

/// \file problem.hpp
/// \brief Shared formulation of the reformulated convex program (15), used
///        by both optimal solvers (FISTA and the interior-point method).
///
/// Variables are the execution times x_{i,j} of live (task, subinterval)
/// pairs, flattened into one contiguous block per subinterval; the objective
/// is the separable energy Σ_i g_i(T_i) with T_i = Σ_j x_{i,j} and
/// g_i(T) = γ·C_i^α·T^{1−α} + p0·T.

#include <limits>
#include <span>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/sched/allocation.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {
struct Exec;
}

namespace easched::detail {

/// Flattened variable layout: one contiguous block per subinterval holding
/// the x_{i,j} of its overlapping tasks.
///
/// `tasks` views the decomposition's CSR overlap arena — a layout must not
/// outlive the `SubintervalDecomposition` it was built from (in practice
/// both live inside one solve call).
struct SolverLayout {
  struct Block {
    std::size_t offset = 0;           ///< start in the flat vector
    std::size_t subinterval = 0;      ///< j
    double length = 0.0;              ///< len_j (the per-variable cap)
    double budget = 0.0;              ///< m·len_j
    std::span<const TaskId> tasks;    ///< overlapping tasks, block order
  };

  std::vector<Block> blocks;
  std::size_t variable_count = 0;

  static SolverLayout build(const SubintervalDecomposition& subs, int cores);

  /// Scatter a flat variable vector into a sparse `Availability` (rows keyed
  /// by each task's live range in `subs`).
  Availability to_availability(const std::vector<double>& x, const TaskSet& tasks,
                               const SubintervalDecomposition& subs) const;
};

/// The separable objective and its derivatives.
class SeparableObjective {
 public:
  SeparableObjective(const TaskSet& tasks, const PowerModel& power,
                     const SolverLayout& layout);

  std::size_t task_count() const { return work_pow_.size(); }

  /// \name Task → variable index (CSR)
  /// The flat variables of task `i`, in ascending flat order, are
  /// `task_vars()[k]` for `k` in `[task_var_offsets()[i],
  /// task_var_offsets()[i+1])`. Ascending flat order equals the order the
  /// serial block sweep visits them, which is what keeps the per-task
  /// parallel reductions below bit-identical to the serial ones.
  /// @{
  const std::vector<std::size_t>& task_var_offsets() const { return var_offsets_; }
  const std::vector<std::size_t>& task_vars() const { return var_ids_; }
  /// @}

  /// Per-task totals T_i at the point x.
  std::vector<double> totals(const std::vector<double>& x) const;
  /// Parallel totals: each task sums its own variables in flat order
  /// (bit-identical to the serial sweep at any pool size).
  std::vector<double> totals(const std::vector<double>& x, const Exec& exec) const;

  /// F from precomputed totals; +inf if any total is non-positive.
  double value_from_totals(const std::vector<double>& total) const;
  /// Parallel per-task terms, serial sum in task order.
  double value_from_totals(const std::vector<double>& total, const Exec& exec) const;

  double value(const std::vector<double>& x) const { return value_from_totals(totals(x)); }

  /// Per-task first derivative g_i'(T_i); totals must be positive.
  std::vector<double> task_gradient(const std::vector<double>& total) const;
  std::vector<double> task_gradient(const std::vector<double>& total, const Exec& exec) const;

  /// Per-task second derivative g_i''(T_i) (always > 0 for α > 1, γ > 0).
  std::vector<double> task_hessian(const std::vector<double>& total) const;
  std::vector<double> task_hessian(const std::vector<double>& total, const Exec& exec) const;

  /// Scatter per-task gradient onto the flat variable vector.
  void gradient(const std::vector<double>& x, std::vector<double>& grad,
                std::vector<double>& total_out) const;

 private:
  const PowerModel* power_;
  const SolverLayout* layout_;
  std::vector<double> work_pow_;  ///< C_i^α
  std::vector<std::size_t> var_offsets_;  ///< CSR offsets, size task_count + 1
  std::vector<std::size_t> var_ids_;      ///< CSR flat variable indices
};

/// Strictly feasible interior starting point: the even split scaled by
/// `shrink` (1.0 = the exact even split, on the capacity boundary for heavy
/// subintervals; < 1.0 keeps slack for barrier methods).
std::vector<double> interior_point(const SolverLayout& layout, double shrink = 1.0);

}  // namespace easched::detail
