#pragma once

/// \file plan_budget.hpp
/// \brief Deadline budget for one planning attempt.
///
/// Planning is on the serving path of `SchedulerService`, so it must answer
/// within a latency budget even when the exact solver misbehaves. A
/// `PlanBudget` carries the two caps a cooperative solver checks between
/// iterations: a wall-clock deadline and an iteration ceiling. Solvers never
/// block past a check — on an expired budget they return their best-so-far
/// iterate with `SolverStatus::kBudgetExhausted`, and the fallback chain
/// (see `sched/fallback.hpp`) escalates to a cheaper rung.
///
/// The default-constructed budget is unlimited, which keeps every existing
/// one-shot entry point (benches, figures, CLI batch mode) unchanged.

#include <chrono>
#include <cstddef>

namespace easched {

/// Cooperative caps on one planning attempt. Copyable plain data.
struct PlanBudget {
  using Clock = std::chrono::steady_clock;

  /// Absolute wall-clock deadline; `Clock::time_point::max()` = none.
  Clock::time_point deadline = Clock::time_point::max();
  /// Extra solver-iteration ceiling on top of the solver's own
  /// `max_iterations`; 0 = none.
  std::size_t max_solver_iterations = 0;

  /// No caps at all (the default).
  static PlanBudget unlimited() { return {}; }

  /// Budget expiring `wall` from now, optionally iteration-capped.
  static PlanBudget within(std::chrono::microseconds wall, std::size_t iterations = 0) {
    PlanBudget budget;
    budget.deadline = Clock::now() + wall;
    budget.max_solver_iterations = iterations;
    return budget;
  }

  bool has_deadline() const { return deadline != Clock::time_point::max(); }

  /// True once the wall-clock deadline has passed. One `steady_clock::now()`
  /// call; solvers check this between iterations, never inside inner loops.
  bool expired() const { return has_deadline() && Clock::now() >= deadline; }

  /// True when `done` iterations exhaust the iteration ceiling.
  bool iterations_exhausted(std::size_t done) const {
    return max_solver_iterations != 0 && done >= max_solver_iterations;
  }
};

}  // namespace easched
