#pragma once

/// \file projection.hpp
/// \brief Euclidean projection onto a capped simplex.
///
/// The feasible region of the reformulated problem (equations (13)–(14)) is,
/// per subinterval, the *capped simplex*
/// `{ v : 0 ≤ v_k ≤ cap_k, Σ v_k ≤ budget }`. Projected-gradient solvers
/// need the exact Euclidean projection onto this set, which reduces to a
/// one-dimensional monotone root find in the shift `λ`:
/// `proj(v)_k = clamp(v_k − λ, 0, cap_k)` with the smallest `λ ≥ 0` making
/// the sum feasible.

#include <span>
#include <vector>

namespace easched {

/// Project `values` in place onto `{0 ≤ v_k ≤ cap_k, Σ v_k ≤ budget}`.
/// `caps` must be non-negative; `budget` must be ≥ 0. `values` and `caps`
/// must have equal lengths.
void project_capped_simplex(std::span<double> values, std::span<const double> caps,
                            double budget);

/// Convenience copy-returning overload.
std::vector<double> project_capped_simplex_copy(std::vector<double> values,
                                                const std::vector<double>& caps, double budget);

}  // namespace easched
