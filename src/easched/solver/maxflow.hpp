#pragma once

/// \file maxflow.hpp
/// \brief Dinic's maximum-flow algorithm on small dense-ish graphs.
///
/// The related work the paper builds on ([2], [4] in its bibliography)
/// solves energy-minimal multiprocessor scheduling via reductions to maximum
/// flow; we use the same machinery for the *exact* feasibility test in
/// `sched/feasibility.hpp`: a task's work flows through (task → subinterval)
/// arcs capped by the subinterval length (a task cannot run parallel to
/// itself) into subinterval nodes capped by `m·len` core-seconds.
///
/// Capacities are doubles; the scheduling graphs have polynomially bounded,
/// well-scaled capacities, so the standard Dinic termination argument holds
/// up to a configurable flow tolerance.

#include <cstddef>
#include <vector>

namespace easched {

/// Max-flow network with double capacities.
class MaxFlowNetwork {
 public:
  /// `nodes` includes source and sink.
  explicit MaxFlowNetwork(std::size_t nodes);

  std::size_t node_count() const { return graph_.size(); }

  /// Add a directed edge `from -> to` with the given capacity (≥ 0); the
  /// reverse residual edge is created automatically. Returns an edge id
  /// usable with `flow_on`.
  std::size_t add_edge(std::size_t from, std::size_t to, double capacity);

  /// Compute the maximum flow from `source` to `sink` (Dinic). May be called
  /// once per network instance.
  double max_flow(std::size_t source, std::size_t sink, double tolerance = 1e-12);

  /// Flow routed over a previously added edge (after `max_flow`).
  double flow_on(std::size_t edge_id) const;

 private:
  struct Edge {
    std::size_t to;
    std::size_t reverse;  ///< index of the reverse edge in graph_[to]
    double capacity;      ///< residual capacity
    double original;      ///< capacity at construction
  };

  bool build_levels(std::size_t source, std::size_t sink, double tolerance);
  double push(std::size_t node, std::size_t sink, double limit, double tolerance);

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_index_;  ///< (node, offset)
  std::vector<int> level_;
  std::vector<std::size_t> next_edge_;
  bool solved_ = false;
};

}  // namespace easched
