#pragma once

/// \file convex_solver.hpp
/// \brief Numerically exact solver for the reformulated problem (15).
///
/// Theorem 1 shows the energy-minimal scheduling reduces to the convex
/// program
///
///   min  Σ_i [ γ·C_i^α / T_i^{α−1} + p0·T_i ],   T_i = Σ_j x_{i,j}
///   s.t. 0 ≤ x_{i,j} ≤ len_j  for subintervals inside [R_i, D_i]
///        x_{i,j} = 0          otherwise
///        Σ_i x_{i,j} ≤ m·len_j                   (capacity, eq. (14))
///
/// The paper solves it with an interior-point method; we use accelerated
/// projected gradient (FISTA with backtracking and adaptive restart) over
/// exactly that feasible polytope — the per-subinterval projection is the
/// capped-simplex projection in `projection.hpp`. The result supplies the
/// `E^{OPT}` denominator of every Normalized Energy Consumption (NEC) figure,
/// and `kkt_residual` certifies optimality (projected-gradient norm).

#include <cstddef>
#include <string_view>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/sched/allocation.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/solver/plan_budget.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// How a solver run ended. Structured so callers can distinguish "the
/// answer is optimal" from the three distinct ways a solve degrades —
/// ran out of iterations, ran out of wall clock, or broke down numerically
/// (NaN/Inf iterates, failed factorization). The fallback chain keys its
/// escalation decisions off this.
enum class SolverStatus {
  kConverged,           ///< met the stationarity / duality-gap criterion
  kIterationCap,        ///< exhausted iterations before converging
  kBudgetExhausted,     ///< `PlanBudget` wall-clock deadline passed
  kNumericalBreakdown,  ///< non-finite iterate or failed factorization
  kStallInjected,       ///< fault injection forced a stall (tests/CI only)
};

/// Stable display name ("converged", "iteration_cap", ...).
std::string_view solver_status_name(SolverStatus status);

/// Solver knobs. Defaults solve the paper's instances (n ≤ 40, N ≤ 80) to
/// well below figure resolution in a few milliseconds.
struct SolverOptions {
  std::size_t max_iterations = 20000;
  /// Stop when the gradient-mapping (projected-gradient) norm has shrunk by
  /// this factor relative to the starting point — a scale-free KKT
  /// stationarity criterion.
  double objective_tol = 1e-6;
  /// Initial inverse step size (backtracking adapts it in both directions).
  double initial_lipschitz = 1.0;
  /// Cooperative deadline/iteration budget (default: unlimited). Checked
  /// between iterations; on expiry the solver returns its best-so-far
  /// iterate with `SolverStatus::kBudgetExhausted`.
  PlanBudget budget{};
  /// Optional warm-start hint: a previous solve's allocation over a nearby
  /// problem (e.g. the cached plan one admission ago). Each variable seeds
  /// from the hint's matching (task, subinterval) cell, clamped to its box
  /// and projected feasible. The convergence criterion stays referenced to
  /// the *cold* starting point's residual, so a warm start can only tighten
  /// (never relax) the accepted solution; an unusable hint (non-finite or
  /// vanishing task totals after projection) silently falls back to the
  /// cold start. Not owned; must outlive the call. Null = cold start.
  const Availability* warm_start = nullptr;
};

/// Solution of the convex program.
struct SolverResult {
  /// Optimal available-time matrix (x_{i,j}), row-compressed.
  Availability allocation;
  /// Per-task total execution time T_i.
  std::vector<double> execution_time;
  /// Optimal objective value E^{OPT}.
  double energy = 0.0;
  /// Iterations consumed.
  std::size_t iterations = 0;
  /// Projected-gradient norm at the solution (KKT stationarity residual).
  double kkt_residual = 0.0;
  /// False when the solve ended for any reason other than convergence.
  bool converged = false;
  /// Structured ending (refines `converged`).
  SolverStatus status = SolverStatus::kIterationCap;
  /// True when the run actually seeded from `SolverOptions::warm_start`
  /// (false when no hint was given or the hint was unusable).
  bool warm_started = false;
};

/// Solve for the optimal energy. `cores ≥ 1`.
SolverResult solve_optimal_allocation(const TaskSet& tasks, int cores, const PowerModel& power,
                                      const SolverOptions& options = {});

/// Same, reusing a precomputed decomposition.
SolverResult solve_optimal_allocation(const TaskSet& tasks,
                                      const SubintervalDecomposition& subs, int cores,
                                      const PowerModel& power, const SolverOptions& options = {});

/// Materialize the solver's allocation into a collision-free `Schedule`
/// (Algorithm 1 per subinterval, each task at its constant optimal frequency
/// C_i/T_i — Observation 1).
Schedule materialize_optimal_schedule(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                      int cores, const SolverResult& result);

}  // namespace easched
