#include "easched/solver/yds.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"

namespace easched {

namespace {

/// A sorted, disjoint set of half-open free time slots.
class SlotSet {
 public:
  SlotSet(double begin, double end) { slots_.push_back({begin, end}); }

  /// Free measure inside [a, b].
  double measure(double a, double b) const {
    double total = 0.0;
    for (const auto& [s, e] : slots_) total += overlap_length(s, e, a, b);
    return total;
  }

  /// Free slots clipped to [a, b], in time order.
  std::vector<std::pair<double, double>> clipped(double a, double b) const {
    std::vector<std::pair<double, double>> out;
    for (const auto& [s, e] : slots_) {
      const double lo = std::max(s, a);
      const double hi = std::min(e, b);
      if (hi > lo + 1e-15) out.push_back({lo, hi});
    }
    return out;
  }

  /// Remove [a, b] from the free set.
  void remove(double a, double b) {
    std::vector<std::pair<double, double>> next;
    next.reserve(slots_.size() + 1);
    for (const auto& [s, e] : slots_) {
      if (e <= a || s >= b) {
        next.push_back({s, e});
        continue;
      }
      if (s < a) next.push_back({s, a});
      if (e > b) next.push_back({b, e});
    }
    slots_ = std::move(next);
  }

 private:
  std::vector<std::pair<double, double>> slots_;
};

/// Preemptive EDF of `group` inside `slots` at constant `speed`; the group's
/// demand exactly fills the slots' capacity by choice of the critical
/// interval. Appends segments on core 0.
void edf_fill(const TaskSet& tasks, const std::vector<TaskId>& group,
              const std::vector<std::pair<double, double>>& slots, double speed,
              Schedule& schedule) {
  std::vector<double> remaining;  // execution time left, = C_i / speed
  remaining.reserve(group.size());
  for (const TaskId id : group) remaining.push_back(tasks.at(id).work / speed);

  const double tol = 1e-12;
  for (const auto& [slot_begin, slot_end] : slots) {
    double t = slot_begin;
    while (t < slot_end - tol) {
      // Earliest-deadline released unfinished task.
      std::size_t best = group.size();
      for (std::size_t k = 0; k < group.size(); ++k) {
        if (remaining[k] <= tol) continue;
        if (tasks.at(group[k]).release > t + tol) continue;
        if (best == group.size() ||
            tasks.at(group[k]).deadline < tasks.at(group[best]).deadline) {
          best = k;
        }
      }
      if (best == group.size()) {
        // Nothing released yet: jump to the next release inside the slot.
        double next_release = slot_end;
        for (std::size_t k = 0; k < group.size(); ++k) {
          if (remaining[k] > tol && tasks.at(group[k]).release > t + tol) {
            next_release = std::min(next_release, tasks.at(group[k]).release);
          }
        }
        t = next_release;
        continue;
      }
      // Run until completion, the next release (possible preemption), or the
      // slot end, whichever comes first.
      double stop = std::min(slot_end, t + remaining[best]);
      for (std::size_t k = 0; k < group.size(); ++k) {
        if (remaining[k] > tol && tasks.at(group[k]).release > t + tol) {
          stop = std::min(stop, tasks.at(group[k]).release);
        }
      }
      EASCHED_ASSERT(stop > t);
      schedule.add({group[best], 0, t, stop, speed});
      remaining[best] -= stop - t;
      t = stop;
    }
  }
  for (std::size_t k = 0; k < group.size(); ++k) {
    EASCHED_ENSURES(remaining[k] <= 1e-6 * (tasks.at(group[k]).work / speed + 1.0));
  }
}

}  // namespace

YdsResult yds_schedule(const TaskSet& tasks) {
  EASCHED_EXPECTS(!tasks.empty());

  YdsResult result;
  result.schedule.set_core_count(1);
  SlotSet free_slots(tasks.earliest_release(), tasks.latest_deadline());
  std::vector<bool> done(tasks.size(), false);
  std::size_t remaining_tasks = tasks.size();

  while (remaining_tasks > 0) {
    // Candidate interval endpoints: releases and deadlines of pending tasks.
    std::vector<double> releases, deadlines;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (done[i]) continue;
      releases.push_back(tasks[i].release);
      deadlines.push_back(tasks[i].deadline);
    }
    std::sort(releases.begin(), releases.end());
    releases.erase(std::unique(releases.begin(), releases.end()), releases.end());
    std::sort(deadlines.begin(), deadlines.end());
    deadlines.erase(std::unique(deadlines.begin(), deadlines.end()), deadlines.end());

    double best_intensity = -1.0;
    double best_r = 0.0, best_d = 0.0;
    for (const double r : releases) {
      for (const double d : deadlines) {
        if (d <= r) continue;
        double work = 0.0;
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          if (!done[i] && tasks[i].release >= r && tasks[i].deadline <= d) work += tasks[i].work;
        }
        if (work <= 0.0) continue;
        const double avail = free_slots.measure(r, d);
        EASCHED_ASSERT(avail > 0.0);  // holds for feasible uniprocessor instances
        const double intensity = work / avail;
        if (intensity > best_intensity) {
          best_intensity = intensity;
          best_r = r;
          best_d = d;
        }
      }
    }
    EASCHED_ASSERT(best_intensity > 0.0);

    YdsStep step;
    step.begin = best_r;
    step.end = best_d;
    step.speed = best_intensity;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (!done[i] && tasks[i].release >= best_r && tasks[i].deadline <= best_d) {
        step.tasks.push_back(static_cast<TaskId>(i));
        done[i] = true;
        --remaining_tasks;
      }
    }

    edf_fill(tasks, step.tasks, free_slots.clipped(best_r, best_d), step.speed,
             result.schedule);
    free_slots.remove(best_r, best_d);
    result.steps.push_back(std::move(step));
  }

  result.schedule.coalesce();
  return result;
}

}  // namespace easched
