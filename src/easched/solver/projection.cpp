#include "easched/solver/projection.hpp"

#include <algorithm>
#include <cmath>

#include "easched/common/contracts.hpp"

namespace easched {

namespace {

double clamped_sum(std::span<const double> values, std::span<const double> caps, double lambda) {
  double sum = 0.0;
  for (std::size_t k = 0; k < values.size(); ++k) {
    sum += std::clamp(values[k] - lambda, 0.0, caps[k]);
  }
  return sum;
}

}  // namespace

void project_capped_simplex(std::span<double> values, std::span<const double> caps,
                            double budget) {
  EASCHED_EXPECTS(values.size() == caps.size());
  EASCHED_EXPECTS(budget >= 0.0);

  // If the box projection satisfies the budget it is the projection onto the
  // intersection. Otherwise the KKT conditions give
  // proj(v)_k = clamp(v_k − λ, 0, cap_k) for the λ > 0 that makes the budget
  // tight — note the shift applies to the *original* values, not the
  // box-clamped ones.
  double sum = 0.0;
  double max_v = 0.0;
  for (std::size_t k = 0; k < values.size(); ++k) {
    EASCHED_EXPECTS(caps[k] >= 0.0);
    sum += std::clamp(values[k], 0.0, caps[k]);
    max_v = std::max(max_v, values[k]);
  }
  if (sum <= budget) {
    for (std::size_t k = 0; k < values.size(); ++k) {
      values[k] = std::clamp(values[k], 0.0, caps[k]);
    }
    return;
  }

  // Otherwise shift by λ > 0: h(λ) = Σ clamp(v_k − λ, 0, cap_k) is continuous
  // and non-increasing with h(0) = sum > budget and h(max_v) = 0 ≤ budget.
  double lo = 0.0;
  double hi = max_v;
  // 100 bisection steps drive the bracket below 2^-100·max_v — far below
  // double precision; typically converges in ~60.
  for (int iter = 0; iter < 100 && hi - lo > 1e-15 * std::max(1.0, max_v); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (clamped_sum(values, caps, mid) > budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double lambda = hi;  // feasible side
  for (std::size_t k = 0; k < values.size(); ++k) {
    values[k] = std::clamp(values[k] - lambda, 0.0, caps[k]);
  }
}

std::vector<double> project_capped_simplex_copy(std::vector<double> values,
                                                const std::vector<double>& caps, double budget) {
  project_capped_simplex(values, caps, budget);
  return values;
}

}  // namespace easched
