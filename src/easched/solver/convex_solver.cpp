#include "easched/solver/convex_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/obs/trace.hpp"
#include "easched/sched/packing.hpp"
#include "easched/solver/problem.hpp"
#include "easched/solver/projection.hpp"

namespace easched {

std::string_view solver_status_name(SolverStatus status) {
  switch (status) {
    case SolverStatus::kConverged: return "converged";
    case SolverStatus::kIterationCap: return "iteration_cap";
    case SolverStatus::kBudgetExhausted: return "budget_exhausted";
    case SolverStatus::kNumericalBreakdown: return "numerical_breakdown";
    case SolverStatus::kStallInjected: return "stall_injected";
  }
  return "unknown";
}

namespace {

/// Project each subinterval block onto its capped simplex.
void project_feasible(std::vector<double>& x, const detail::SolverLayout& layout) {
  for (const auto& block : layout.blocks) {
    const std::span<double> vars(x.data() + block.offset, block.tasks.size());
    const std::vector<double> caps(block.tasks.size(), block.length);
    project_capped_simplex(vars, caps, block.budget);
  }
}

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) sum += sq(a[k] - b[k]);
  return sum;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) sum += a[k] * b[k];
  return sum;
}

}  // namespace

SolverResult solve_optimal_allocation(const TaskSet& tasks, int cores, const PowerModel& power,
                                      const SolverOptions& options) {
  const SubintervalDecomposition subs(tasks);
  return solve_optimal_allocation(tasks, subs, cores, power, options);
}

SolverResult solve_optimal_allocation(const TaskSet& tasks,
                                      const SubintervalDecomposition& subs, int cores,
                                      const PowerModel& power, const SolverOptions& options) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(options.max_iterations > 0);

  const detail::SolverLayout layout = detail::SolverLayout::build(subs, cores);
  const detail::SeparableObjective objective(tasks, power, layout);

  obs::Span solve_span("solver.fista");
  solve_span.arg("tasks", static_cast<double>(tasks.size()));

  // Monotone FISTA (accelerated projected gradient): backtracking line
  // search, function-value restart with a guaranteed-descent fallback step,
  // and a scale-free gradient-mapping stopping criterion.
  std::vector<double> x = detail::interior_point(layout);
  bool warm_started = false;
  if (options.warm_start != nullptr && options.warm_start->task_count() == tasks.size() &&
      options.warm_start->subinterval_count() == subs.size()) {
    // Seed from the hint: matching cells clamped to their boxes, then
    // projected feasible. The hint is rejected (cold start kept) when the
    // projected point leaves the objective undefined.
    std::vector<double> seeded(layout.variable_count, 0.0);
    for (const auto& block : layout.blocks) {
      for (std::size_t k = 0; k < block.tasks.size(); ++k) {
        const double v = (*options.warm_start)(static_cast<std::size_t>(block.tasks[k]),
                                               block.subinterval);
        seeded[block.offset + k] = std::clamp(v, 0.0, block.length);
      }
    }
    project_feasible(seeded, layout);
    bool usable = true;
    for (const double t : objective.totals(seeded)) {
      if (!std::isfinite(t) || t <= 1e-300) usable = false;
    }
    if (usable) {
      x = std::move(seeded);
      warm_started = true;
    }
  }
  solve_span.arg("warm", warm_started ? 1.0 : 0.0);
  std::vector<double> x_prev = x;
  std::vector<double> y = x;
  std::vector<double> grad, totals, candidate;
  double momentum_t = 1.0;
  double lipschitz = std::max(options.initial_lipschitz, 1e-12);
  double f_x = objective.value(x);
  std::size_t iterations = 0;
  bool converged = false;
  SolverStatus status = SolverStatus::kIterationCap;

  // Fault-injection verdicts for this invocation (always false outside
  // fault-injected tests/CI): a forced stall exits before the first
  // iteration; a poisoned iterate exercises the breakdown detection below.
  const bool stall_injected = faults::fire(FaultSite::kSolverStall);
  const bool poison_injected = faults::fire(FaultSite::kSolverNan);

  // One backtracked projected-gradient step from `base` (with value f_base
  // and gradient g_base): returns the candidate and its value, growing
  // `lipschitz` until the quadratic upper bound holds.
  const auto backtracked_step = [&](const std::vector<double>& base, double f_base,
                                    const std::vector<double>& g_base,
                                    std::vector<double>& out) {
    for (;;) {
      out = base;
      for (std::size_t k = 0; k < out.size(); ++k) out[k] -= g_base[k] / lipschitz;
      project_feasible(out, layout);
      std::vector<double> diff(out.size());
      for (std::size_t k = 0; k < out.size(); ++k) diff[k] = out[k] - base[k];
      const double quad =
          f_base + dot(g_base, diff) + 0.5 * lipschitz * squared_distance(out, base);
      const double f_out = objective.value(out);
      // A NaN objective can never satisfy the descent test; surface it to
      // the caller's breakdown detection instead of backtracking forever.
      if (std::isnan(f_out)) return f_out;
      if (f_out <= quad + 1e-12 * std::abs(quad)) return f_out;
      lipschitz *= 2.0;
      EASCHED_ASSERT(lipschitz < 1e30);
    }
  };

  // Gradient-mapping norm (KKT stationarity residual at step 1/L).
  const auto gradient_mapping_at = [&](const std::vector<double>& point) {
    objective.gradient(point, grad, totals);
    std::vector<double> mapped = point;
    const double step = 1.0 / lipschitz;
    for (std::size_t k = 0; k < mapped.size(); ++k) mapped[k] -= step * grad[k];
    project_feasible(mapped, layout);
    return std::sqrt(squared_distance(point, mapped)) / step;
  };
  const auto gradient_mapping = [&]() { return gradient_mapping_at(x); };

  // The stopping criterion is relative to the residual at the *cold*
  // starting point even when warm-started — otherwise a good hint would
  // shrink the reference and make convergence strictly harder to certify
  // than from scratch.
  const double initial_residual =
      warm_started
          ? std::max(gradient_mapping_at(detail::interior_point(layout)), 1e-300)
          : std::max(gradient_mapping(), 1e-300);
  double best_residual = initial_residual;
  std::size_t checks_without_progress = 0;

  // A warm start may already satisfy the criterion; check once before the
  // loop (never on cold runs, whose iteration trace must not change). An
  // injected stall still stalls — it outranks the shortcut so fault drills
  // exercise the same degradation path warm or cold.
  if (warm_started && !stall_injected &&
      gradient_mapping() <= options.objective_tol * initial_residual) {
    converged = true;
    status = SolverStatus::kConverged;
  }

  for (std::size_t iter = 0; !converged && iter < options.max_iterations; ++iter) {
    if (stall_injected) {
      status = SolverStatus::kStallInjected;
      break;
    }
    if (options.budget.expired() || options.budget.iterations_exhausted(iter)) {
      status = SolverStatus::kBudgetExhausted;
      break;
    }
    iterations = iter + 1;
    obs::Span iter_span("solver.fista.iter");
    // Let the step size recover; backtracking grows it back when needed.
    lipschitz = std::max(0.5 * lipschitz, 1e-12);

    if (poison_injected && iter == 0) {
      y[0] = std::numeric_limits<double>::quiet_NaN();
    }

    // Momentum point may have a non-finite or non-positive task total (the
    // objective is undefined there): a NaN/Inf total is a numerical
    // breakdown (x keeps the last good iterate); a vanishing one falls back
    // to the last feasible iterate.
    {
      const std::vector<double> ty = objective.totals(y);
      bool broken = false;
      bool restart = false;
      for (const double t : ty) {
        if (!std::isfinite(t)) broken = true;
        if (t <= 1e-300) restart = true;
      }
      if (broken) {
        status = SolverStatus::kNumericalBreakdown;
        break;
      }
      if (restart) {
        y = x;
        momentum_t = 1.0;
      }
    }

    objective.gradient(y, grad, totals);
    const double f_y = objective.value_from_totals(totals);
    double f_candidate = backtracked_step(y, f_y, grad, candidate);

    if (std::isnan(f_candidate)) {
      status = SolverStatus::kNumericalBreakdown;
      break;
    }
    if (f_candidate > f_x) {
      // Momentum overshoot: restart and take a plain (monotone) projected
      // gradient step from x — backtracking guarantees descent from x.
      momentum_t = 1.0;
      objective.gradient(x, grad, totals);
      f_candidate = backtracked_step(x, f_x, grad, candidate);
      if (std::isnan(f_candidate)) {
        status = SolverStatus::kNumericalBreakdown;
        break;
      }
    }

    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * momentum_t * momentum_t));
    y = candidate;
    const double beta = (momentum_t - 1.0) / t_next;
    for (std::size_t k = 0; k < y.size(); ++k) y[k] += beta * (candidate[k] - x_prev[k]);
    momentum_t = t_next;
    x_prev = x;
    x = candidate;
    f_x = std::min(f_x, f_candidate);
    iter_span.arg("lipschitz", lipschitz);

    // Stationarity check (cheap relative to a step); scale-free: relative
    // to the residual at the starting point. The projection's bisection puts
    // a noise floor under the residual, so a long plateau also terminates.
    // Warm runs check every iteration — seeded near the solution, the first
    // qualifying iterate is worth catching immediately; cold runs keep the
    // sparser cadence (and their exact iteration trace).
    if (warm_started || iter % 4 == 3 || iter + 1 == options.max_iterations) {
      const double gm = gradient_mapping();
      iter_span.arg("residual", gm);
      if (gm <= options.objective_tol * initial_residual) {
        converged = true;
        status = SolverStatus::kConverged;
        break;
      }
      if (gm < 0.5 * best_residual) {
        best_residual = gm;
        checks_without_progress = 0;
      } else if (++checks_without_progress >= 50) {
        // Numerically stationary: accept if within a relaxed band.
        converged = gm <= 1e-4 * initial_residual;
        if (converged) status = SolverStatus::kConverged;
        break;
      }
    }
  }

  const double residual = gradient_mapping();
  solve_span.arg("iterations", static_cast<double>(iterations));
  solve_span.set_status(solver_status_name(status).data());

  SolverResult result;
  result.allocation = layout.to_availability(x, tasks, subs);
  result.execution_time = objective.totals(x);
  result.energy = objective.value(x);
  result.iterations = iterations;
  result.kkt_residual = residual;
  result.converged = converged;
  result.status = status;
  result.warm_started = warm_started;
  return result;
}

Schedule materialize_optimal_schedule(const TaskSet& tasks, const SubintervalDecomposition& subs,
                                      int cores, const SolverResult& result) {
  EASCHED_EXPECTS(result.execution_time.size() == tasks.size());
  Schedule schedule(cores);
  for (std::size_t j = 0; j < subs.size(); ++j) {
    std::vector<PackItem> items;
    // The CSR overlap row is ascending TaskId and carries every possibly
    // nonzero cell of column j — same items, same order as the dense sweep.
    for (const TaskId id : subs[j].overlapping) {
      const auto i = static_cast<std::size_t>(id);
      const double time = result.allocation(i, j);
      if (time <= 1e-12) continue;
      const double total = result.execution_time[i];
      EASCHED_ASSERT(total > 0.0);
      items.push_back({id, std::min(time, subs[j].length()), tasks[i].work / total});
    }
    if (!items.empty()) pack_subinterval(subs[j].begin, subs[j].end, cores, items, schedule);
  }
  schedule.coalesce();
  return schedule;
}

}  // namespace easched
