#include "easched/solver/interior_point.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "easched/common/contracts.hpp"
#include "easched/common/linalg.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/obs/trace.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/solver/problem.hpp"

namespace easched {

namespace {

using detail::SeparableObjective;
using detail::SolverLayout;

/// Per-variable metadata resolved once: owning task and block, and the cap.
struct VariableInfo {
  std::size_t task = 0;
  std::size_t block = 0;
  double cap = 0.0;
};

std::vector<VariableInfo> collect_variables(const SolverLayout& layout) {
  std::vector<VariableInfo> vars(layout.variable_count);
  for (std::size_t b = 0; b < layout.blocks.size(); ++b) {
    const auto& block = layout.blocks[b];
    for (std::size_t k = 0; k < block.tasks.size(); ++k) {
      vars[block.offset + k] = {static_cast<std::size_t>(block.tasks[k]), b, block.length};
    }
  }
  return vars;
}

/// Capacity slacks s_j = B_j − Σ_{v∈j} x_v. Each block sums its own
/// contiguous variable range in flat order — bit-identical at any pool size.
std::vector<double> block_slacks(const SolverLayout& layout, const std::vector<double>& x,
                                 const Exec& exec) {
  std::vector<double> s(layout.blocks.size());
  exec.loop(layout.blocks.size(), [&](std::size_t b) {
    const auto& block = layout.blocks[b];
    double used = 0.0;
    for (std::size_t k = 0; k < block.tasks.size(); ++k) used += x[block.offset + k];
    s[b] = block.budget - used;
  });
  return s;
}

/// Barrier value Φ_μ(x); +inf outside the strict interior. The log terms
/// land in per-variable slots and reduce serially in flat order, matching
/// the serial interleaved check-and-add loop bit for bit whenever the point
/// is interior (and agreeing on +inf whenever it is not).
double barrier_value(const SeparableObjective& objective, const SolverLayout& layout,
                     const std::vector<VariableInfo>& vars, const std::vector<double>& x,
                     double mu, const Exec& exec) {
  const double f = objective.value_from_totals(objective.totals(x, exec), exec);
  if (!std::isfinite(f)) return std::numeric_limits<double>::infinity();
  for (std::size_t v = 0; v < x.size(); ++v) {
    if (x[v] <= 0.0 || x[v] >= vars[v].cap) return std::numeric_limits<double>::infinity();
  }
  std::vector<double> term(x.size());
  exec.loop(x.size(), [&](std::size_t v) {
    term[v] = std::log(x[v]) + std::log(vars[v].cap - x[v]);
  });
  double barrier = 0.0;
  for (const double t : term) barrier += t;
  for (const double s : block_slacks(layout, x, exec)) {
    if (s <= 0.0) return std::numeric_limits<double>::infinity();
    barrier += std::log(s);
  }
  return f - mu * barrier;
}

}  // namespace

InteriorPointResult solve_optimal_interior_point(const TaskSet& tasks, int cores,
                                                 const PowerModel& power,
                                                 const InteriorPointOptions& options) {
  const SubintervalDecomposition subs(tasks);
  return solve_optimal_interior_point(tasks, subs, cores, power, options);
}

InteriorPointResult solve_optimal_interior_point(const TaskSet& tasks,
                                                 const SubintervalDecomposition& subs,
                                                 int cores, const PowerModel& power,
                                                 const InteriorPointOptions& options) {
  EASCHED_EXPECTS(!tasks.empty());
  EASCHED_EXPECTS(cores > 0);
  EASCHED_EXPECTS(options.barrier_decrease > 0.0 && options.barrier_decrease < 1.0);

  const SolverLayout layout = SolverLayout::build(subs, cores);
  const SeparableObjective objective(tasks, power, layout);
  const std::vector<VariableInfo> vars = collect_variables(layout);
  const Exec exec = options.pool != nullptr ? Exec::on(*options.pool) : Exec::serial();

  obs::Span solve_span("solver.ipm");
  solve_span.arg("tasks", static_cast<double>(tasks.size()));

  const std::size_t n_vars = layout.variable_count;
  const std::size_t n_tasks = tasks.size();
  const std::size_t n_blocks = layout.blocks.size();
  const double constraint_count = static_cast<double>(2 * n_vars + n_blocks);

  // Strictly interior start: half the even split.
  std::vector<double> x = detail::interior_point(layout, 0.5);
  bool warm_started = false;
  if (options.warm_start != nullptr && options.warm_start->task_count() == n_tasks &&
      options.warm_start->subinterval_count() == subs.size() &&
      options.warm_barrier_scale > 0.0 && options.warm_barrier_scale <= 1.0) {
    // Blend the hint toward the interior anchor: a previous solution sits on
    // (or numerically at) the boundary where the barrier is undefined, so
    // 0.9·hint + 0.1·anchor restores strict interiority while staying close.
    std::vector<double> seeded(n_vars);
    for (const auto& block : layout.blocks) {
      for (std::size_t k = 0; k < block.tasks.size(); ++k) {
        const std::size_t v = block.offset + k;
        const double hint = (*options.warm_start)(static_cast<std::size_t>(block.tasks[k]),
                                                  block.subinterval);
        seeded[v] = 0.9 * std::clamp(hint, 0.0, block.length) + 0.1 * x[v];
      }
    }
    bool interior = true;
    for (std::size_t v = 0; v < n_vars; ++v) {
      if (!(seeded[v] > 0.0 && seeded[v] < vars[v].cap)) interior = false;
    }
    if (interior) {
      for (const double s : block_slacks(layout, seeded, exec)) {
        if (!(s > 0.0)) interior = false;
      }
    }
    if (interior && std::isfinite(objective.value(seeded))) {
      x = std::move(seeded);
      warm_started = true;
    }
  }
  solve_span.arg("warm", warm_started ? 1.0 : 0.0);

  InteriorPointResult result;
  double mu = (std::abs(objective.value(x)) + 1.0) / constraint_count;
  // The hint has already walked most of the central path; restart the
  // barrier schedule near its end instead of from the top.
  if (warm_started) mu *= options.warm_barrier_scale;

  SolverStatus status = SolverStatus::kIterationCap;
  bool aborted = false;
  // Last iterate whose totals were verified finite; restored on numerical
  // breakdown so the caller always receives a usable point.
  std::vector<double> checkpoint = x;

  // Fault-injection verdicts for this invocation (always false outside
  // fault-injected tests/CI).
  if (faults::fire(FaultSite::kSolverStall)) {
    status = SolverStatus::kStallInjected;
    aborted = true;
  }
  if (!aborted && faults::fire(FaultSite::kSolverNan)) {
    x[0] = std::numeric_limits<double>::quiet_NaN();
  }

  for (std::size_t outer = 0; !aborted && outer < options.max_outer_iterations; ++outer) {
    ++result.outer_iterations;
    obs::Span outer_span("solver.ipm.outer");
    outer_span.arg("mu", mu);

    // Damped Newton on Φ_μ.
    for (std::size_t step = 0; step < options.max_newton_steps; ++step) {
      obs::Span newton_span("solver.ipm.newton");
      if (options.budget.expired() ||
          options.budget.iterations_exhausted(result.newton_steps)) {
        status = SolverStatus::kBudgetExhausted;
        aborted = true;
        break;
      }
      const std::vector<double> totals = objective.totals(x, exec);
      bool finite = true;
      for (const double t : totals) {
        if (!std::isfinite(t)) finite = false;
      }
      if (!finite) {
        status = SolverStatus::kNumericalBreakdown;
        aborted = true;
        x = checkpoint;
        break;
      }
      checkpoint = x;
      const std::vector<double> gprime = objective.task_gradient(totals, exec);
      const std::vector<double> gsecond = objective.task_hessian(totals, exec);
      const std::vector<double> slack = block_slacks(layout, x, exec);

      // Gradient of Φ and the diagonal part D of its Hessian (element-wise,
      // each v writes its own slots).
      std::vector<double> grad(n_vars), diag(n_vars), dinv_grad(n_vars);
      exec.loop(n_vars, [&](std::size_t v) {
        const double lo = x[v];
        const double hi = vars[v].cap - x[v];
        EASCHED_ASSERT(lo > 0.0 && hi > 0.0);
        grad[v] = gprime[vars[v].task] - mu / lo + mu / hi + mu / slack[vars[v].block];
        diag[v] = mu / (lo * lo) + mu / (hi * hi);
        EASCHED_ASSERT(diag[v] > 0.0);
        dinv_grad[v] = grad[v] / diag[v];
      });

      // Woodbury: H = D + U·W·Uᵀ with task indicators (weight g''_i) and
      // block indicators (weight μ/s_j²). Solve H·d = −grad through the
      // (n_tasks + n_blocks) core system M = W⁻¹ + Uᵀ D⁻¹ U.
      //
      // The serial sweep over v updates each core entry independently, so it
      // splits into two owner-computes passes that reproduce every entry's
      // accumulation order exactly: task ti owns row ti plus the (bj, ti)
      // column entries (a task meets each block at most once, so those are
      // single writes), and block bj owns its diagonal and rhs slot. Both
      // passes visit their variables in ascending flat order — the serial
      // order.
      const std::size_t core_dim = n_tasks + n_blocks;
      Matrix core(core_dim, core_dim);
      std::vector<double> rhs_core(core_dim, 0.0);
      const std::vector<std::size_t>& tvo = objective.task_var_offsets();
      const std::vector<std::size_t>& tvi = objective.task_vars();
      exec.loop(n_tasks, [&](std::size_t ti) {
        double diag_sum = 0.0;
        double rhs_sum = 0.0;
        for (std::size_t k = tvo[ti]; k < tvo[ti + 1]; ++k) {
          const std::size_t v = tvi[k];
          const std::size_t bj = n_tasks + vars[v].block;
          const double dinv = 1.0 / diag[v];
          diag_sum += dinv;
          core(ti, bj) += dinv;
          core(bj, ti) += dinv;
          rhs_sum += dinv_grad[v];
        }
        core(ti, ti) = diag_sum;
        rhs_core[ti] = rhs_sum;
      });
      exec.loop(n_blocks, [&](std::size_t b) {
        const auto& block = layout.blocks[b];
        double diag_sum = 0.0;
        double rhs_sum = 0.0;
        for (std::size_t k = 0; k < block.tasks.size(); ++k) {
          const std::size_t v = block.offset + k;
          diag_sum += 1.0 / diag[v];
          rhs_sum += dinv_grad[v];
        }
        core(n_tasks + b, n_tasks + b) = diag_sum;
        rhs_core[n_tasks + b] = rhs_sum;
      });
      for (std::size_t i = 0; i < n_tasks; ++i) {
        EASCHED_ASSERT(gsecond[i] > 0.0);
        core(i, i) += 1.0 / gsecond[i];
      }
      for (std::size_t b = 0; b < n_blocks; ++b) {
        core(n_tasks + b, n_tasks + b) += slack[b] * slack[b] / mu;
      }

      ++result.factorizations;
      const auto factor = cholesky(core, 1e-300, exec);
      if (!factor.has_value()) {
        // The core matrix lost positive definiteness — a genuine numerical
        // breakdown, reported structurally instead of asserted away.
        status = SolverStatus::kNumericalBreakdown;
        aborted = true;
        break;
      }
      const std::vector<double> y = cholesky_solve(*factor, rhs_core);

      // d = −D⁻¹ grad + D⁻¹ U y.
      std::vector<double> direction(n_vars);
      exec.loop(n_vars, [&](std::size_t v) {
        const double uy = y[vars[v].task] + y[n_tasks + vars[v].block];
        direction[v] = (-grad[v] + uy) / diag[v];
      });

      // Newton decrement λ² = −gradᵀd; stop the inner phase when tiny.
      const double decrement = -dot(grad, direction);
      newton_span.arg("decrement", decrement);
      if (!std::isfinite(decrement)) {
        status = SolverStatus::kNumericalBreakdown;
        aborted = true;
        break;
      }
      if (decrement <= 2.0 * options.newton_tol) break;

      // Fraction-to-boundary rule keeps the iterate strictly interior.
      double alpha_max = 1.0;
      for (std::size_t v = 0; v < n_vars; ++v) {
        if (direction[v] < 0.0) alpha_max = std::min(alpha_max, -x[v] / direction[v]);
        if (direction[v] > 0.0) {
          alpha_max = std::min(alpha_max, (vars[v].cap - x[v]) / direction[v]);
        }
      }
      for (std::size_t b = 0; b < n_blocks; ++b) {
        const auto& block = layout.blocks[b];
        double dsum = 0.0;
        for (std::size_t k = 0; k < block.tasks.size(); ++k) dsum += direction[block.offset + k];
        if (dsum > 0.0) alpha_max = std::min(alpha_max, slack[b] / dsum);
      }
      double alpha = 0.99 * alpha_max;

      // Armijo backtracking on Φ_μ.
      const double phi0 = barrier_value(objective, layout, vars, x, mu, exec);
      std::vector<double> trial(n_vars);
      for (int backtrack = 0; backtrack < 60; ++backtrack) {
        exec.loop(n_vars, [&](std::size_t v) { trial[v] = x[v] + alpha * direction[v]; });
        const double phi = barrier_value(objective, layout, vars, trial, mu, exec);
        if (phi <= phi0 - 0.25 * alpha * decrement) break;
        alpha *= 0.5;
      }
      newton_span.arg("alpha", alpha);
      x = trial;
      ++result.newton_steps;
    }
    if (aborted) break;

    // Duality-gap proxy: for the standard log barrier the gap is exactly
    // (number of constraints)·μ at the central point.
    const double objective_scale = std::abs(objective.value(x)) + 1.0;
    if (constraint_count * mu < options.gap_tol * objective_scale) break;
    mu *= options.barrier_decrease;
  }

  result.final_barrier = mu;
  result.solution.allocation = layout.to_availability(x, tasks, subs);
  result.solution.execution_time = objective.totals(x);
  result.solution.energy = objective.value(x);
  result.solution.iterations = result.newton_steps;
  result.solution.kkt_residual = constraint_count * mu;
  result.solution.converged =
      !aborted &&
      constraint_count * mu < options.gap_tol * (std::abs(result.solution.energy) + 1.0);
  if (result.solution.converged) {
    status = SolverStatus::kConverged;
  }
  solve_span.arg("newton_steps", static_cast<double>(result.newton_steps));
  solve_span.set_status(solver_status_name(status).data());
  result.solution.status = status;
  result.solution.warm_started = warm_started;
  return result;
}

}  // namespace easched
